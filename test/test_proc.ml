(* Tests for the process substrate: ids, fd tables, tasks, processes
   and proxies. *)

open Mk_proc

let check_int = Alcotest.(check int)
let check_bool = Alcotest.(check bool)

let test_ids_monotonic () =
  let ids = Ids.create ~first:10 () in
  check_int "first" 10 (Ids.next ids);
  check_int "second" 11 (Ids.next ids);
  check_int "peek" 12 (Ids.peek ids);
  check_int "peek does not consume" 12 (Ids.next ids)

let test_fd_std_streams () =
  let t = Fd_table.create () in
  check_int "three open" 3 (Fd_table.open_count t);
  check_bool "stdout" true (Fd_table.lookup t 1 <> None)

let test_fd_lowest_free () =
  let t = Fd_table.create () in
  check_int "first file is 3" 3 (Fd_table.open_file t ~path:"/a");
  check_int "then 4" 4 (Fd_table.open_file t ~path:"/b");
  (match Fd_table.close t 3 with Ok () -> () | Error `Ebadf -> Alcotest.fail "close");
  check_int "reuses 3" 3 (Fd_table.open_file t ~path:"/c")

let test_fd_close_semantics () =
  let t = Fd_table.create () in
  let fd = Fd_table.open_file t ~path:"/x" in
  check_bool "close ok" true (Fd_table.close t fd = Ok ());
  check_bool "double close ebadf" true (Fd_table.close t fd = Error `Ebadf);
  check_bool "lookup closed" true (Fd_table.lookup t fd = None)

let test_fd_positions () =
  let t = Fd_table.create () in
  let fd = Fd_table.open_file t ~path:"/x" in
  (match Fd_table.advance t fd ~bytes:100 with Ok () -> () | Error `Ebadf -> Alcotest.fail "advance");
  (match Fd_table.lookup t fd with
  | Some d -> check_int "pos" 100 d.Fd_table.position
  | None -> Alcotest.fail "lookup");
  (match Fd_table.seek t fd ~pos:7 with Ok () -> () | Error `Ebadf -> Alcotest.fail "seek");
  match Fd_table.lookup t fd with
  | Some d -> check_int "seeked" 7 d.Fd_table.position
  | None -> Alcotest.fail "lookup"

let mk_task () = Task.make ~tid:1 ~pid:1 ~name:"t" ~affinity:[ 0; 1 ]

let test_task_lifecycle () =
  let t = mk_task () in
  check_bool "starts runnable" true (Task.is_runnable t);
  Task.run_on t 1;
  check_bool "running" true (t.Task.state = Task.Running 1);
  Task.block t "futex";
  check_bool "blocked" false (Task.is_runnable t);
  Task.wake t;
  check_bool "woken" true (Task.is_runnable t);
  Task.exit t ~code:0;
  Task.wake t;
  check_bool "exit is final" true (t.Task.state = Task.Exited 0)

let test_task_accounting () =
  let t = mk_task () in
  Task.charge_user t 100;
  Task.charge_user t 50;
  Task.charge_kernel t 30;
  Task.charge_noise t 7;
  check_int "user" 150 t.Task.acct.Task.user_time;
  check_int "kernel" 30 t.Task.acct.Task.kernel_time;
  check_int "noise" 7 t.Task.acct.Task.noise_time

let test_process_proxy () =
  let phys = Mk_mem.Phys.create (Mk_hw.Topology.numa (Mk_hw.Knl.topology Mk_hw.Knl.Snc4_flat)) in
  let asp =
    Mk_mem.Address_space.create ~phys ~strategy:Mk_mem.Address_space.mckernel_strategy
      ~default_policy:(Mk_mem.Policy.Default { home = 0 })
      ()
  in
  let p = Process.make ~pid:100 ~name:"app" ~address_space:asp in
  check_bool "own fds before proxy" false (Process.has_proxy p);
  let own = Process.fds p in
  let proxy = Process.attach_proxy p ~proxy_pid:101 in
  check_int "proxy pid" 101 proxy.Process.proxy_pid;
  check_bool "proxy attached" true (Process.has_proxy p);
  (* The descriptor table switches to the Linux-side proxy's. *)
  check_bool "fds now proxy's" true (Process.fds p == proxy.Process.fds);
  check_bool "distinct from own" true (not (Process.fds p == own))

let test_process_live_tasks () =
  let phys = Mk_mem.Phys.create (Mk_hw.Topology.numa (Mk_hw.Knl.topology Mk_hw.Knl.Snc4_flat)) in
  let asp =
    Mk_mem.Address_space.create ~phys ~strategy:Mk_mem.Address_space.linux_strategy
      ~default_policy:(Mk_mem.Policy.Default { home = 0 })
      ()
  in
  let p = Process.make ~pid:1 ~name:"x" ~address_space:asp in
  let t1 = Task.make ~tid:1 ~pid:1 ~name:"a" ~affinity:[ 0 ] in
  let t2 = Task.make ~tid:2 ~pid:1 ~name:"b" ~affinity:[ 1 ] in
  Process.add_task p t1;
  Process.add_task p t2;
  check_int "two live" 2 (List.length (Process.live_tasks p));
  Task.exit t1 ~code:0;
  check_int "one live" 1 (List.length (Process.live_tasks p))

let fd_alloc_lowest =
  QCheck.Test.make ~name:"fd allocation always returns the lowest free" ~count:100
    QCheck.(list bool)
    (fun ops ->
      let t = Fd_table.create () in
      let opened = ref [] in
      List.for_all
        (fun do_open ->
          if do_open || !opened = [] then begin
            let fd = Fd_table.open_file t ~path:"/f" in
            (* The new descriptor must be lower than any free slot:
               i.e. no open fd below it was skipped. *)
            let ok = not (List.mem fd !opened) in
            opened := fd :: !opened;
            ok
          end
          else begin
            match !opened with
            | fd :: rest ->
                opened := rest;
                Fd_table.close t fd = Ok ()
            | [] -> true
          end)
        ops)

let qsuite tests = List.map QCheck_alcotest.to_alcotest tests

let () =
  Alcotest.run "mk_proc"
    [
      ("ids", [ Alcotest.test_case "monotonic" `Quick test_ids_monotonic ]);
      ( "fd_table",
        Alcotest.test_case "std streams" `Quick test_fd_std_streams
        :: Alcotest.test_case "lowest free" `Quick test_fd_lowest_free
        :: Alcotest.test_case "close semantics" `Quick test_fd_close_semantics
        :: Alcotest.test_case "positions" `Quick test_fd_positions
        :: qsuite [ fd_alloc_lowest ] );
      ( "task",
        [
          Alcotest.test_case "lifecycle" `Quick test_task_lifecycle;
          Alcotest.test_case "accounting" `Quick test_task_accounting;
        ] );
      ( "process",
        [
          Alcotest.test_case "proxy" `Quick test_process_proxy;
          Alcotest.test_case "live tasks" `Quick test_process_live_tasks;
        ] );
    ]
