(* DSCheck model-checking of the lock-free engine substrates.

   [Deque_impl]/[Mailbox_impl] are dune-rule copies of
   lib/engine/deque.ml and mailbox.ml with [Atomic] rebound to
   [Dscheck.TracedAtomic], so the checker exhaustively explores every
   interleaving of the spawned domains at atomic-operation granularity
   — on the real code, not a re-implementation that could drift.
   Each scenario's [final]/[check] states the structure's delivery
   invariant: no value lost, none duplicated, SPSC order preserved.

   The executable only exists under [--profile dscheck], so the
   default build never requires the dscheck package — a dev-only
   dependency; `make dscheck` probes for it and explains the skip. *)

module Atomic = Dscheck.TracedAtomic

(* Owner pushes — the third push doubling the capacity-2 ring — and
   pops, while a thief steals concurrently: afterwards every value is
   delivered exactly once across popped/stolen/left-behind. *)
let deque_owner_vs_thief () =
  Atomic.trace (fun () ->
      let q = Deque_impl.create ~capacity:2 () in
      let popped = ref [] in
      let stolen = ref [] in
      Atomic.spawn (fun () ->
          Deque_impl.push q 1;
          Deque_impl.push q 2;
          Deque_impl.push q 3;
          match Deque_impl.pop q with
          | Some v -> popped := v :: !popped
          | None -> ());
      Atomic.spawn (fun () ->
          match Deque_impl.steal q with
          | Some v -> stolen := v :: !stolen
          | None -> ());
      Atomic.final (fun () ->
          Atomic.check (fun () ->
              let rec drain acc =
                match Deque_impl.pop q with
                | Some v -> drain (v :: acc)
                | None -> acc
              in
              let all = List.sort compare (!popped @ !stolen @ drain []) in
              all = [ 1; 2; 3 ])))

(* Two thieves race the CAS on [top] over a two-element deque: both
   must eventually succeed (the loser's retry finds the next index)
   and they must steal distinct values in FIFO order from the top. *)
let deque_two_thieves () =
  Atomic.trace (fun () ->
      let q = Deque_impl.create ~capacity:4 () in
      Deque_impl.push q 10;
      Deque_impl.push q 20;
      let s1 = ref None in
      let s2 = ref None in
      Atomic.spawn (fun () -> s1 := Deque_impl.steal q);
      Atomic.spawn (fun () -> s2 := Deque_impl.steal q);
      Atomic.final (fun () ->
          Atomic.check (fun () ->
              match (!s1, !s2) with
              | Some a, Some b -> (a = 10 && b = 20) || (a = 20 && b = 10)
              | _ -> false)))

(* SPSC mailbox: producer pushes 1,2,3 while the consumer pops; what
   the consumer saw followed by what is left must be exactly [1;2;3]
   — FIFO, no loss, no duplication. *)
let mailbox_spsc () =
  Atomic.trace (fun () ->
      let q = Mailbox_impl.create () in
      let got = ref [] in
      Atomic.spawn (fun () ->
          Mailbox_impl.push q 1;
          Mailbox_impl.push q 2;
          Mailbox_impl.push q 3);
      Atomic.spawn (fun () ->
          for _ = 1 to 3 do
            match Mailbox_impl.pop q with
            | Some v -> got := v :: !got
            | None -> ()
          done);
      Atomic.final (fun () ->
          Atomic.check (fun () ->
              let rec drain acc =
                match Mailbox_impl.pop q with
                | Some v -> drain (v :: acc)
                | None -> acc
              in
              List.rev !got @ List.rev (drain []) = [ 1; 2; 3 ])))

let () =
  print_endline "dscheck: deque owner-vs-thief (with ring growth)";
  deque_owner_vs_thief ();
  print_endline "dscheck: deque two thieves";
  deque_two_thieves ();
  print_endline "dscheck: mailbox SPSC";
  mailbox_spsc ();
  print_endline "dscheck: all interleavings explored, no races"
