(* Tests for the discrete-event engine: PRNG, heap, event queue,
   statistics, units and table rendering. *)

open Mk_engine

let check_int = Alcotest.(check int)
let check_bool = Alcotest.(check bool)
let check_float msg = Alcotest.(check (float 1e-9)) msg
let check_floatish msg = Alcotest.(check (float 1e-3)) msg

(* ------------------------------------------------------------------ *)
(* Units *)

let test_units_constants () =
  check_int "us" 1_000 Units.us;
  check_int "ms" 1_000_000 Units.ms;
  check_int "sec" 1_000_000_000 Units.sec;
  check_int "mib" (1024 * 1024) Units.mib;
  check_int "of_gib" (3 * 1024 * 1024 * 1024) (Units.of_gib 3)

let test_units_conversions () =
  check_int "of_us" 1_500 (Units.of_us 1.5);
  check_int "of_ms" 2_500_000 (Units.of_ms 2.5);
  check_float "to_sec" 1.5 (Units.to_sec (Units.of_sec 1.5))

let test_units_pp () =
  Alcotest.(check string) "ns" "999ns" (Units.time_to_string 999);
  Alcotest.(check string) "us" "1.50us" (Units.time_to_string 1_500);
  Alcotest.(check string) "ms" "2.00ms" (Units.time_to_string 2_000_000);
  Alcotest.(check string) "s" "3.000s" (Units.time_to_string 3_000_000_000);
  Alcotest.(check string) "b" "17B" (Units.size_to_string 17);
  Alcotest.(check string) "gib" "2.00GiB" (Units.size_to_string (Units.of_gib 2))

let test_transfer_time () =
  (* 1000 bytes at 1 byte/ns -> 1000 ns *)
  check_int "simple" 1000 (Units.transfer_time ~bytes:1000 ~bw:1.0);
  check_int "zero bytes" 0 (Units.transfer_time ~bytes:0 ~bw:1.0);
  check_int "min 1ns" 1 (Units.transfer_time ~bytes:1 ~bw:1e9)

(* ------------------------------------------------------------------ *)
(* Rng *)

let test_rng_deterministic () =
  let a = Rng.create 42 and b = Rng.create 42 in
  for _ = 1 to 100 do
    Alcotest.(check int64) "same stream" (Rng.bits64 a) (Rng.bits64 b)
  done

let test_rng_seed_sensitivity () =
  let a = Rng.create 42 and b = Rng.create 43 in
  check_bool "different seeds differ" false (Rng.bits64 a = Rng.bits64 b)

let test_rng_split_independent () =
  let parent = Rng.create 7 in
  let c1 = Rng.split parent 1 and c2 = Rng.split parent 2 in
  check_bool "split streams differ" false (Rng.bits64 c1 = Rng.bits64 c2);
  (* Splitting must not advance the parent. *)
  let p1 = Rng.create 7 in
  let _ = Rng.split p1 1 in
  let p2 = Rng.create 7 in
  Alcotest.(check int64) "parent unperturbed" (Rng.bits64 p2) (Rng.bits64 p1)

let test_rng_int_bounds () =
  let rng = Rng.create 99 in
  for _ = 1 to 1000 do
    let v = Rng.int rng 17 in
    check_bool "in range" true (v >= 0 && v < 17)
  done

let test_rng_float_bounds () =
  let rng = Rng.create 5 in
  for _ = 1 to 1000 do
    let v = Rng.float rng 3.0 in
    check_bool "in range" true (v >= 0.0 && v < 3.0)
  done

let test_rng_exponential_mean () =
  let rng = Rng.create 11 in
  let n = 20_000 in
  let sum = ref 0.0 in
  for _ = 1 to n do
    sum := !sum +. Rng.exponential rng ~mean:5.0
  done;
  let mean = !sum /. float_of_int n in
  check_bool "mean near 5" true (abs_float (mean -. 5.0) < 0.2)

let test_rng_normal_moments () =
  let rng = Rng.create 13 in
  let n = 20_000 in
  let s = Stats.Summary.create () in
  for _ = 1 to n do
    Stats.Summary.add s (Rng.normal rng ~mu:2.0 ~sigma:3.0)
  done;
  check_bool "mean near 2" true (abs_float (Stats.Summary.mean s -. 2.0) < 0.1);
  check_bool "stddev near 3" true (abs_float (Stats.Summary.stddev s -. 3.0) < 0.1)

let test_rng_shuffle_permutation () =
  let rng = Rng.create 3 in
  let a = Array.init 50 (fun i -> i) in
  Rng.shuffle rng a;
  let sorted = Array.copy a in
  Array.sort compare sorted;
  Alcotest.(check (array int)) "permutation" (Array.init 50 (fun i -> i)) sorted

(* ------------------------------------------------------------------ *)
(* Heap *)

let test_heap_ordering () =
  let h = Heap.create () in
  List.iter (fun k -> Heap.push h ~key:k k) [ 5; 1; 9; 3; 7; 2; 8 ];
  let order = List.map fst (Heap.to_sorted_list h) in
  Alcotest.(check (list int)) "sorted" [ 1; 2; 3; 5; 7; 8; 9 ] order

let test_heap_fifo_ties () =
  let h = Heap.create () in
  Heap.push h ~key:1 "a";
  Heap.push h ~key:1 "b";
  Heap.push h ~key:1 "c";
  let vals = List.map snd (Heap.to_sorted_list h) in
  Alcotest.(check (list string)) "insertion order on ties" [ "a"; "b"; "c" ] vals

let test_heap_pop_empty () =
  let h : int Heap.t = Heap.create () in
  check_bool "pop empty" true (Heap.pop h = None);
  check_bool "peek empty" true (Heap.peek h = None)

let test_heap_grow () =
  let h = Heap.create ~capacity:2 () in
  for i = 100 downto 1 do
    Heap.push h ~key:i i
  done;
  check_int "length" 100 (Heap.length h);
  check_int "min" 1 (fst (Heap.pop_exn h))

let heap_qcheck =
  QCheck.Test.make ~name:"heap drains in sorted order" ~count:200
    QCheck.(list small_int)
    (fun keys ->
      let h = Heap.create () in
      List.iter (fun k -> Heap.push h ~key:k k) keys;
      let drained = List.map fst (Heap.to_sorted_list h) in
      drained = List.sort compare keys)

(* Model-based: a stable priority queue compared against a stably
   sorted reference list, with pops interleaved between pushes so the
   root-removal and sift paths run from many intermediate shapes (the
   shapes Sim produces when cancelled events are popped and skipped). *)
let heap_stable_queue_qcheck =
  QCheck.Test.make ~name:"heap is a stable priority queue under mixed ops"
    ~count:200
    QCheck.(list (pair (int_range 0 15) bool))
    (fun ops ->
      let h = Heap.create () in
      let model = ref [] in
      let seq = ref 0 in
      let by_key_then_seq (k1, s1) (k2, s2) =
        if k1 <> k2 then compare k1 k2 else compare s1 s2
      in
      let ok = ref true in
      List.iter
        (fun (key, do_pop) ->
          if do_pop then (
            match (Heap.pop h, !model) with
            | None, [] -> ()
            | Some (k, v), (mk, ms) :: rest when k = mk && v = ms ->
                model := rest
            | _ -> ok := false)
          else begin
            Heap.push h ~key !seq;
            model := List.sort by_key_then_seq ((key, !seq) :: !model);
            incr seq
          end)
        ops;
      !ok && Heap.length h = List.length !model)

(* ------------------------------------------------------------------ *)
(* Sim *)

let test_sim_fires_in_order () =
  let sim = Sim.create () in
  let log = ref [] in
  let note tag s = log := (tag, Sim.now s) :: !log in
  ignore (Sim.schedule sim ~at:30 (note "c"));
  ignore (Sim.schedule sim ~at:10 (note "a"));
  ignore (Sim.schedule sim ~at:20 (note "b"));
  Sim.run sim;
  Alcotest.(check (list (pair string int)))
    "order and clock"
    [ ("a", 10); ("b", 20); ("c", 30) ]
    (List.rev !log)

let test_sim_cancel () =
  let sim = Sim.create () in
  let fired = ref false in
  let id = Sim.schedule sim ~at:5 (fun _ -> fired := true) in
  Sim.cancel sim id;
  Sim.run sim;
  check_bool "cancelled event silent" false !fired;
  check_int "pending zero" 0 (Sim.pending sim)

let test_sim_schedule_from_handler () =
  let sim = Sim.create () in
  let total = ref 0 in
  ignore
    (Sim.schedule sim ~at:1 (fun s ->
         incr total;
         ignore (Sim.schedule_after s ~delay:4 (fun _ -> incr total))));
  Sim.run sim;
  check_int "chained events" 2 !total;
  check_int "clock at last event" 5 (Sim.now sim)

let test_sim_run_until () =
  let sim = Sim.create () in
  let count = ref 0 in
  for i = 1 to 10 do
    ignore (Sim.schedule sim ~at:(i * 10) (fun _ -> incr count))
  done;
  Sim.run ~until:50 sim;
  check_int "events up to 50" 5 !count;
  check_int "clock clamped" 50 (Sim.now sim);
  Sim.run sim;
  check_int "rest fire" 10 !count

let test_sim_past_rejected () =
  let sim = Sim.create () in
  ignore (Sim.schedule sim ~at:10 (fun _ -> ()));
  Sim.run sim;
  Alcotest.check_raises "past schedule"
    (Invalid_argument "Sim.schedule: time 5 precedes clock 10") (fun () ->
      ignore (Sim.schedule sim ~at:5 (fun _ -> ())))

(* Regression for the live-event accounting: [pending] must reflect
   exactly the uncancelled, unfired events — a double cancel, or a
   cancel of an already-fired event, must not decrement it again. *)
let test_sim_cancel_accounting () =
  let sim = Sim.create () in
  let fired = ref 0 in
  let a = Sim.schedule sim ~at:5 (fun _ -> incr fired) in
  let b = Sim.schedule sim ~at:6 (fun _ -> incr fired) in
  check_int "two live" 2 (Sim.pending sim);
  Sim.cancel sim a;
  check_int "one live after cancel" 1 (Sim.pending sim);
  Sim.cancel sim a;
  check_int "double cancel does not decrement" 1 (Sim.pending sim);
  Sim.run sim;
  check_int "only the live event fired" 1 !fired;
  check_int "drained" 0 (Sim.pending sim);
  Sim.cancel sim b;
  Sim.cancel sim b;
  check_int "cancel after firing does not underflow" 0 (Sim.pending sim);
  ignore (Sim.schedule sim ~at:10 (fun _ -> ()));
  check_int "fresh event counted" 1 (Sim.pending sim)

let sim_random_cancels_qcheck =
  QCheck.Test.make
    ~name:"sim fires exactly the uncancelled events, in (time, seq) order"
    ~count:100
    QCheck.(list (pair (int_range 0 50) bool))
    (fun specs ->
      let sim = Sim.create () in
      let fired = ref [] in
      let ids =
        List.mapi
          (fun i (at, _) ->
            Sim.schedule sim ~at (fun s -> fired := (i, Sim.now s) :: !fired))
          specs
      in
      List.iter2
        (fun id (_, cancel) -> if cancel then Sim.cancel sim id)
        ids specs;
      let live =
        List.filteri (fun i _ -> not (snd (List.nth specs i))) (List.mapi (fun i (at, _) -> (i, at)) specs)
      in
      let ok_pending = Sim.pending sim = List.length live in
      Sim.run sim;
      let expected =
        List.stable_sort (fun (_, a1) (_, a2) -> compare a1 a2) live
      in
      ok_pending && List.rev !fired = expected && Sim.pending sim = 0)

let test_sim_advance_to () =
  let sim = Sim.create () in
  Sim.advance_to sim 100;
  check_int "advanced" 100 (Sim.now sim);
  ignore (Sim.schedule sim ~at:150 (fun _ -> ()));
  Alcotest.check_raises "blocked by pending event"
    (Invalid_argument "Sim.advance_to: pending event precedes target") (fun () ->
      Sim.advance_to sim 200)

(* ------------------------------------------------------------------ *)
(* Stats *)

let test_summary_basic () =
  let s = Stats.Summary.create () in
  List.iter (Stats.Summary.add s) [ 1.0; 2.0; 3.0; 4.0 ];
  check_int "count" 4 (Stats.Summary.count s);
  check_float "mean" 2.5 (Stats.Summary.mean s);
  check_float "min" 1.0 (Stats.Summary.min s);
  check_float "max" 4.0 (Stats.Summary.max s);
  check_float "total" 10.0 (Stats.Summary.total s);
  check_floatish "variance" (5.0 /. 3.0) (Stats.Summary.variance s)

let test_summary_merge () =
  let a = Stats.Summary.create () and b = Stats.Summary.create () in
  List.iter (Stats.Summary.add a) [ 1.0; 2.0 ];
  List.iter (Stats.Summary.add b) [ 3.0; 4.0; 5.0 ];
  let m = Stats.Summary.merge a b in
  let direct = Stats.Summary.create () in
  List.iter (Stats.Summary.add direct) [ 1.0; 2.0; 3.0; 4.0; 5.0 ];
  check_int "count" (Stats.Summary.count direct) (Stats.Summary.count m);
  check_floatish "mean" (Stats.Summary.mean direct) (Stats.Summary.mean m);
  check_floatish "variance" (Stats.Summary.variance direct) (Stats.Summary.variance m)

let test_sample_median () =
  check_float "odd" 3.0 (Stats.median_of [ 5.0; 1.0; 3.0 ]);
  check_float "even" 2.5 (Stats.median_of [ 4.0; 1.0; 2.0; 3.0 ])

let test_sample_percentile () =
  let s = Stats.Sample.of_list (List.init 101 float_of_int) in
  check_float "p0" 0.0 (Stats.Sample.percentile s 0.0);
  check_float "p50" 50.0 (Stats.Sample.percentile s 50.0);
  check_float "p100" 100.0 (Stats.Sample.percentile s 100.0);
  check_float "p25" 25.0 (Stats.Sample.percentile s 25.0)

let test_sample_minmax () =
  let s = Stats.Sample.of_list [ 9.0; -3.0; 4.0 ] in
  let lo, hi = Stats.Sample.minmax s in
  check_float "min" (-3.0) lo;
  check_float "max" 9.0 hi

let test_histogram_buckets () =
  let h = Stats.Histogram.create ~base:2.0 ~buckets:16 () in
  List.iter (Stats.Histogram.add h) [ 0.5; 1.5; 3.0; 3.9; 100.0 ];
  check_int "total" 5 (Stats.Histogram.count h);
  check_int "bucket0 [0,1)" 1 (Stats.Histogram.bucket_count h 0);
  check_int "bucket1 [1,2)" 1 (Stats.Histogram.bucket_count h 1);
  check_int "bucket2 [2,4)" 2 (Stats.Histogram.bucket_count h 2)

let summary_matches_sample =
  QCheck.Test.make ~name:"summary mean matches sample mean" ~count:100
    QCheck.(list_of_size Gen.(int_range 1 50) (float_bound_exclusive 1000.0))
    (fun xs ->
      let s = Stats.Summary.create () in
      List.iter (Stats.Summary.add s) xs;
      let sample = Stats.Sample.of_list xs in
      abs_float (Stats.Summary.mean s -. Stats.Sample.mean sample) < 1e-6)

(* ------------------------------------------------------------------ *)
(* Table *)

let contains_substring haystack needle =
  let n = String.length needle and h = String.length haystack in
  let rec go i = i + n <= h && (String.sub haystack i n = needle || go (i + 1)) in
  n = 0 || go 0

let test_table_render () =
  let out =
    Table.render ~header:[ "app"; "nodes"; "speedup" ]
      [ [ "minife"; "1024"; "7.01" ]; [ "amg"; "16"; "1.09" ] ]
  in
  check_bool "contains header" true (contains_substring out "app");
  check_bool "contains row" true (contains_substring out "minife")

let test_csv () =
  let out = Table.csv ~header:[ "a"; "b" ] [ [ "1"; "2" ]; [ "3"; "4" ] ] in
  Alcotest.(check string) "csv" "a,b\n1,2\n3,4\n" out

let test_chart_smoke () =
  let s = { Table.label = "linux"; points = [ (1.0, 1.0); (2.0, 4.0) ] } in
  let out = Table.chart ~title:"t" [ s ] in
  check_bool "non-empty" true (String.length out > 10)

let test_chart_empty () =
  let out = Table.chart ~title:"t" [ { Table.label = "x"; points = [] } ] in
  check_bool "handles empty" true (String.length out > 0)


(* ------------------------------------------------------------------ *)
(* Json *)

let test_json_scalars () =
  Alcotest.(check string) "null" "null" (Json.to_string Json.Null);
  Alcotest.(check string) "bool" "true" (Json.to_string (Json.Bool true));
  Alcotest.(check string) "int" "42" (Json.to_string (Json.Int 42));
  Alcotest.(check string) "float" "1.5" (Json.to_string (Json.Float 1.5));
  Alcotest.(check string) "string" "\"hi\"" (Json.to_string (Json.String "hi"))

let test_json_escaping () =
  Alcotest.(check string) "quotes and newline" "\"a\\\"b\\nc\""
    (Json.to_string (Json.String "a\"b\nc"))

let test_json_structures () =
  let doc =
    Json.Obj [ ("xs", Json.List [ Json.Int 1; Json.Int 2 ]); ("ok", Json.Bool false) ]
  in
  Alcotest.(check string) "compact" "{\"xs\":[1,2],\"ok\":false}" (Json.to_string doc);
  check_bool "pretty contains newlines" true
    (String.contains (Json.to_string_pretty doc) '\n')

let test_json_empty_containers () =
  Alcotest.(check string) "empty list" "[]" (Json.to_string (Json.List []));
  Alcotest.(check string) "empty obj" "{}" (Json.to_string (Json.Obj []))

let json_testable =
  Alcotest.testable
    (fun fmt j -> Format.pp_print_string fmt (Json.to_string j))
    ( = )

let check_parse msg expected input =
  match Json.of_string input with
  | Ok v -> Alcotest.check json_testable msg expected v
  | Error e -> Alcotest.failf "%s: parse error: %s" msg e

let test_json_parse_scalars () =
  check_parse "null" Json.Null "null";
  check_parse "true" (Json.Bool true) " true ";
  check_parse "int" (Json.Int (-42)) "-42";
  check_parse "float" (Json.Float 1.5) "1.5";
  check_parse "exponent" (Json.Float 2e3) "2e3";
  check_parse "string" (Json.String "hi") "\"hi\""

let test_json_parse_escapes () =
  check_parse "escapes" (Json.String "a\"b\nc\\") "\"a\\\"b\\nc\\\\\"";
  check_parse "unicode ascii" (Json.String "A") "\"\\u0041\"";
  check_parse "unicode 2-byte" (Json.String "\xc3\xa9") "\"\\u00e9\"";
  check_parse "unicode 3-byte" (Json.String "\xe2\x82\xac") "\"\\u20ac\""

let test_json_parse_structures () =
  check_parse "nested"
    (Json.Obj
       [
         ("xs", Json.List [ Json.Int 1; Json.Float 2.5; Json.Null ]);
         ("ok", Json.Bool false);
         ("o", Json.Obj []);
       ])
    "{\"xs\":[1,2.5,null],\"ok\":false,\"o\":{}}"

let test_json_parse_errors () =
  let rejects msg s =
    check_bool msg true (Result.is_error (Json.of_string s))
  in
  rejects "empty" "";
  rejects "trailing garbage" "1 x";
  rejects "bare word" "nul";
  rejects "unclosed list" "[1,2";
  rejects "unclosed string" "\"abc";
  rejects "missing colon" "{\"a\" 1}";
  rejects "trailing comma" "[1,]";
  (* the error carries a byte offset for debugging torn files *)
  match Json.of_string "[1,]" with
  | Error e -> check_bool "offset present" true (contains_substring e "3")
  | Ok _ -> Alcotest.fail "accepted trailing comma"

let test_json_roundtrip () =
  let doc =
    Json.Obj
      [
        ("schema", Json.String "x/1");
        ("rows", Json.List [ Json.Int 1; Json.Float 0.25; Json.Bool true ]);
        ("note", Json.String "a\"b\n\xe2\x82\xac");
        ("nothing", Json.Null);
      ]
  in
  check_parse "compact" doc (Json.to_string doc);
  check_parse "pretty" doc (Json.to_string_pretty doc)

(* ------------------------------------------------------------------ *)
(* Atomic_file *)

(* Remove the file plus any staging residue ([.tmp] of either the
   legacy or the pid/counter-unique naming scheme, torn or not). *)
let in_temp name f =
  let path = Filename.temp_file "mk_atomic" name in
  Fun.protect
    ~finally:(fun () ->
      let dir = Filename.dirname path and base = Filename.basename path in
      Array.iter
        (fun entry ->
          if
            String.length entry >= String.length base
            && String.sub entry 0 (String.length base) = base
          then
            try Sys.remove (Filename.concat dir entry) with Sys_error _ -> ())
        (Sys.readdir dir))
    (fun () -> f path)

let test_atomic_roundtrip () =
  in_temp "rt" (fun path ->
      Atomic_file.write path "first";
      Alcotest.(check string) "write/read" "first" (Atomic_file.read path);
      Atomic_file.write path "second, longer contents\n";
      Alcotest.(check string)
        "overwrite" "second, longer contents\n" (Atomic_file.read path);
      check_bool "no staging residue" false
        (Sys.file_exists (Atomic_file.tmp_path path)))

let test_atomic_partial_write_invisible () =
  (* A writer killed mid-write leaves a torn .tmp behind; the real
     path must still hold the previous complete, parseable snapshot. *)
  in_temp "torn" (fun path ->
      Atomic_file.write path "{\"ok\":true}";
      let oc = open_out_bin (Atomic_file.tmp_path path) in
      output_string oc "{\"ok\":fal";
      (* killed here: no rename *)
      close_out oc;
      Alcotest.(check string)
        "reader sees old snapshot" "{\"ok\":true}" (Atomic_file.read path);
      check_bool "and it still parses" true
        (Json.of_string (Atomic_file.read path)
        = Ok (Json.Obj [ ("ok", Json.Bool true) ])))

let test_atomic_crash_hook () =
  in_temp "crash" (fun path ->
      Atomic_file.write path "{\"gen\":1}";
      (match
         Atomic_file.with_crash_after_bytes 4 (fun () ->
             Atomic_file.write path "{\"gen\":2}")
       with
      | () -> Alcotest.fail "crash hook did not fire"
      | exception Atomic_file.Crashed -> ());
      Alcotest.(check string)
        "old snapshot intact" "{\"gen\":1}" (Atomic_file.read path);
      (* A real kill does not clean up: the torn staging file stays. *)
      let dir = Filename.dirname path and base = Filename.basename path in
      let residue =
        Array.exists
          (fun entry ->
            String.length entry > String.length base
            && String.sub entry 0 (String.length base) = base
            && Filename.check_suffix entry ".tmp")
          (Sys.readdir dir)
      in
      check_bool "torn staging file left behind" true residue;
      (* Hook disarmed on exit: the next write lands normally. *)
      Atomic_file.write path "{\"gen\":2}";
      Alcotest.(check string)
        "retry lands" "{\"gen\":2}" (Atomic_file.read path))

let test_atomic_corrupt_typed () =
  in_temp "corrupt" (fun path ->
      let missing = path ^ ".does-not-exist" in
      (match Atomic_file.read missing with
      | _ -> Alcotest.fail "read of missing file succeeded"
      | exception Atomic_file.Corrupt { path = p; _ } ->
          Alcotest.(check string) "corrupt names the path" missing p);
      Atomic_file.write path "[1,]";
      match Atomic_file.read_json path with
      | _ -> Alcotest.fail "parsed corrupt JSON"
      | exception Atomic_file.Corrupt { reason; _ } ->
          check_bool "reason carries the byte offset" true
            (contains_substring reason "3"))

let test_atomic_concurrent_writers () =
  (* Unique staging names mean two racing writers cannot tear each
     other's temp file: whoever renames last wins with a complete
     payload. *)
  in_temp "race" (fun path ->
      let a = String.make 4096 'a' and b = String.make 4096 'b' in
      let writer payload () =
        for _ = 1 to 50 do
          Atomic_file.write path payload
        done
      in
      let da = Domain.spawn (writer a) and db = Domain.spawn (writer b) in
      Domain.join da;
      Domain.join db;
      let final = Atomic_file.read path in
      check_bool "one complete payload wins" true (final = a || final = b))

(* ------------------------------------------------------------------ *)
(* Journal *)

let test_journal_roundtrip () =
  in_temp "journal" (fun path ->
      Sys.remove path;
      let j = Journal.open_ ~path () in
      Journal.record j ~key:"a" ~label:"cell a" (Json.Int 1);
      Journal.record j ~key:"b" ~label:"cell b"
        (Json.Obj [ ("x", Json.Float 0.5) ]);
      check_bool "find after record" true
        (Journal.find j ~key:"a" = Some (Json.Int 1));
      Journal.close j;
      let j2 = Journal.open_ ~path () in
      check_int "loaded" 2 (Journal.loaded j2);
      check_int "torn" 0 (Journal.torn j2);
      check_bool "replayed value" true
        (Journal.find j2 ~key:"b" = Some (Json.Obj [ ("x", Json.Float 0.5) ]));
      check_bool "missing key misses" true (Journal.find j2 ~key:"c" = None);
      Journal.close j2)

let test_journal_torn_tail () =
  in_temp "jtorn" (fun path ->
      Sys.remove path;
      let j = Journal.open_ ~path () in
      Journal.record j ~key:"a" ~label:"a" (Json.Int 1);
      Journal.record j ~key:"b" ~label:"b" (Json.Int 2);
      Journal.close j;
      (* A killed writer leaves half a line; reload must keep the
         complete prefix and count the torn tail. *)
      let oc = open_out_gen [ Open_append; Open_binary ] 0o644 path in
      output_string oc "{\"key\":\"c\",\"la";
      close_out oc;
      let j2 = Journal.open_ ~path () in
      check_int "complete entries load" 2 (Journal.loaded j2);
      check_int "torn line counted" 1 (Journal.torn j2);
      check_bool "good entries replay" true
        (Journal.find j2 ~key:"b" = Some (Json.Int 2));
      Journal.close j2)

let test_journal_torn_tail_repaired_on_append () =
  in_temp "jrepair" (fun path ->
      Sys.remove path;
      let j = Journal.open_ ~path () in
      Journal.record j ~key:"a" ~label:"a" (Json.Int 1);
      Journal.close j;
      let torn_tail () =
        let oc = open_out_gen [ Open_append; Open_binary ] 0o644 path in
        output_string oc "{\"key\":\"b\",\"la";
        close_out oc
      in
      (* Crash → resume (which records a new cell) → crash → resume:
         the record appended by the first resume must not fuse with
         the torn line, or the second resume silently loses it. *)
      torn_tail ();
      let j2 = Journal.open_ ~path () in
      check_int "torn tail detected" 1 (Journal.torn j2);
      Journal.record j2 ~key:"c" ~label:"c" (Json.Int 3);
      Journal.close j2;
      torn_tail ();
      let j3 = Journal.open_ ~path () in
      check_int "both records survive two resumes" 2 (Journal.loaded j3);
      check_bool "resumed record replays" true
        (Journal.find j3 ~key:"c" = Some (Json.Int 3));
      Journal.close j3;
      (* A missing final newline with a parseable last line is
         repaired with a separator, not truncated. *)
      let oc = open_out_gen [ Open_append; Open_binary ] 0o644 path in
      output_string oc "{\"key\":\"d\",\"label\":\"d\",\"value\":4}";
      close_out oc;
      let j4 = Journal.open_ ~path () in
      check_int "newline-less last line still loads" 3 (Journal.loaded j4);
      Journal.record j4 ~key:"e" ~label:"e" (Json.Int 5);
      Journal.close j4;
      let j5 = Journal.open_ ~path () in
      check_int "no fusion after separator" 4 (Journal.loaded j5);
      check_bool "newline-less entry kept" true
        (Journal.find j5 ~key:"d" = Some (Json.Int 4));
      Journal.close j5)

let test_journal_record_only () =
  in_temp "jrec" (fun path ->
      Sys.remove path;
      let j = Journal.open_ ~path () in
      Journal.record j ~key:"a" ~label:"a" (Json.Int 1);
      Journal.close j;
      let j2 = Journal.open_ ~replay:false ~path () in
      check_int "entries still counted" 1 (Journal.loaded j2);
      check_bool "but never replayed" true (Journal.find j2 ~key:"a" = None);
      Journal.close j2)

(* ------------------------------------------------------------------ *)
(* Deque: the Chase–Lev ring under the work-stealing pool *)

(* List literals evaluate right to left — sequence the takes
   explicitly so the recorded order is the call order. *)
let take3 f =
  let a = f () in
  let b = f () in
  let c = f () in
  List.filter_map Fun.id [ a; b; c ]

let test_deque_lifo_pop () =
  let d = Deque.create () in
  List.iter (Deque.push d) [ 1; 2; 3 ];
  check_int "size" 3 (Deque.size d);
  Alcotest.(check (list int))
    "owner pops newest first" [ 3; 2; 1 ]
    (take3 (fun () -> Deque.pop d));
  check_bool "then empty" true (Deque.pop d = None);
  check_int "size empty" 0 (Deque.size d)

let test_deque_fifo_steal () =
  let d = Deque.create () in
  List.iter (Deque.push d) [ 1; 2; 3 ];
  Alcotest.(check (list int))
    "thief takes oldest first" [ 1; 2; 3 ]
    (take3 (fun () -> Deque.steal d));
  check_bool "then empty" true (Deque.steal d = None)

let test_deque_invalid_capacity () =
  Alcotest.check_raises "zero capacity"
    (Invalid_argument "Deque.create: capacity must be >= 1") (fun () ->
      ignore (Deque.create ~capacity:0 ()))

let test_deque_growth () =
  (* A capacity-1 ring must double its way up without losing or
     duplicating anything, under a mix of pops and (same-domain)
     steals. *)
  let d = Deque.create ~capacity:1 () in
  let n = 1_000 in
  for i = 1 to n do
    Deque.push d i
  done;
  check_int "all retained across growth" n (Deque.size d);
  let taken = ref [] in
  let rec drain alt =
    match (if alt then Deque.steal d else Deque.pop d) with
    | Some v ->
        taken := v :: !taken;
        drain (not alt)
    | None -> ( match Deque.pop d with None -> () | Some v ->
        taken := v :: !taken;
        drain alt)
  in
  drain true;
  Alcotest.(check (list int))
    "each element exactly once"
    (List.init n (fun i -> i + 1))
    (List.sort compare !taken)

let test_deque_cross_domain_steal () =
  (* One owner pushes (and occasionally pops); thief domains steal
     concurrently from a deliberately tiny ring so growth races the
     steals.  Every pushed element must be taken exactly once. *)
  let d = Deque.create ~capacity:2 () in
  let n = 20_000 and thieves = 3 in
  let stop = Atomic.make false in
  let stolen_sum = Atomic.make 0 and stolen_n = Atomic.make 0 in
  let doms =
    List.init thieves (fun _ ->
        Domain.spawn (fun () ->
            let rec go () =
              match Deque.steal d with
              | Some v ->
                  Atomic.incr stolen_n;
                  ignore (Atomic.fetch_and_add stolen_sum v);
                  go ()
              | None ->
                  if not (Atomic.get stop) then (
                    Domain.cpu_relax ();
                    go ())
            in
            go ()))
  in
  let popped_sum = ref 0 and popped_n = ref 0 in
  let take () =
    match Deque.pop d with
    | Some v ->
        popped_sum := !popped_sum + v;
        incr popped_n;
        true
    | None -> false
  in
  for i = 1 to n do
    Deque.push d i;
    if i land 7 = 0 then ignore (take ())
  done;
  while take () do () done;
  Atomic.set stop true;
  List.iter Domain.join doms;
  check_int "every push taken exactly once" n (!popped_n + Atomic.get stolen_n);
  check_int "no element corrupted"
    (n * (n + 1) / 2)
    (!popped_sum + Atomic.get stolen_sum)

(* ------------------------------------------------------------------ *)
(* Mailbox: the SPSC channel between shards *)

let test_mailbox_fifo () =
  let m = Mailbox.create () in
  check_bool "starts empty" true (Mailbox.is_empty m);
  List.iter (Mailbox.push m) [ 1; 2; 3 ];
  check_bool "not empty" true (not (Mailbox.is_empty m));
  Alcotest.(check (list int))
    "FIFO" [ 1; 2; 3 ]
    (take3 (fun () -> Mailbox.pop m));
  check_bool "drained" true (Mailbox.pop m = None);
  check_bool "empty again" true (Mailbox.is_empty m)

let test_mailbox_cross_domain () =
  (* One producer domain, the test domain consuming concurrently —
     the {!Deque} stress test's shape on the SPSC queue.  Every push
     must arrive exactly once, in order. *)
  let m = Mailbox.create () in
  let n = 50_000 in
  let producer =
    Domain.spawn (fun () ->
        for i = 1 to n do
          Mailbox.push m i;
          if i land 1023 = 0 then Domain.cpu_relax ()
        done)
  in
  let received = ref 0 and sum = ref 0 and in_order = ref true in
  while !received < n do
    match Mailbox.pop m with
    | Some v ->
        if v <> !received + 1 then in_order := false;
        received := !received + 1;
        sum := !sum + v
    | None -> Domain.cpu_relax ()
  done;
  Domain.join producer;
  check_bool "strict FIFO across domains" true !in_order;
  check_int "every push delivered once" (n * (n + 1) / 2) !sum;
  check_bool "nothing extra" true (Mailbox.pop m = None)

(* ------------------------------------------------------------------ *)
(* Shard: conservative sharded DES *)

let test_shard_invalid_args () =
  let nop _ = () in
  Alcotest.check_raises "zero shards"
    (Invalid_argument "Shard.run: shards must be positive") (fun () ->
      ignore (Shard.run ~shards:0 ~lookahead:1 ~init:nop ~receive:(fun _ () -> ()) ()));
  Alcotest.check_raises "zero lookahead"
    (Invalid_argument "Shard.run: lookahead must be positive") (fun () ->
      ignore (Shard.run ~shards:1 ~lookahead:0 ~init:nop ~receive:(fun _ () -> ()) ()))

let test_shard_lookahead_contract () =
  (* A cross-shard send inside the lookahead window is a model bug
     and must be rejected loudly. *)
  let saw = ref None in
  (try
     ignore
       (Shard.run ~shards:2 ~lookahead:100
          ~init:(fun t ->
            if Shard.id t = 0 then
              Shard.schedule t ~at:10 (fun t ->
                  Shard.send t ~shard:1 ~at:50 ()))
          ~receive:(fun _ () -> ())
          ())
   with Invalid_argument msg -> saw := Some msg);
  check_bool "rejected" true
    (!saw = Some "Shard.send: cross-shard message inside the lookahead window")

let test_shard_ping_pong () =
  (* Two shards bouncing a counter: every delivery happens at its
     send timestamp, in order, regardless of sharding. *)
  let log = ref [] in
  let lookahead = 10 in
  let stats =
    Shard.run ~shards:2 ~lookahead
      ~init:(fun t ->
        if Shard.id t = 0 then
          Shard.schedule t ~at:0 (fun t -> Shard.send t ~shard:1 ~at:lookahead 1))
      ~receive:(fun t n ->
        log := (Shard.id t, Shard.now t, n) :: !log;
        if n < 5 then
          Shard.send t ~shard:(1 - Shard.id t)
            ~at:(Shard.now t + lookahead)
            (n + 1))
      ()
  in
  Alcotest.(check (list (triple int int int)))
    "alternating deliveries at exact times"
    [ (1, 10, 1); (0, 20, 2); (1, 30, 3); (0, 40, 4); (1, 50, 5) ]
    (List.rev !log);
  check_int "epochs ran" 6 stats.Shard.epochs;
  check_int "crossings" 5
    (Array.fold_left ( + ) 0 stats.Shard.cross_messages);
  check_bool "nulls flowed" true
    (Array.fold_left ( + ) 0 stats.Shard.null_messages > 0)

let test_shard_single_equals_many () =
  (* A deterministic workload must log identically for any shard
     count; with one shard the engine is just Sim with extra steps. *)
  let run shards =
    let log = ref [] in
    let stats =
      Shard.run ~shards ~lookahead:7
        ~init:(fun t ->
          List.iter
            (fun g ->
              if g mod shards = Shard.id t then
                Shard.schedule t ~at:g (fun t ->
                    Shard.send t ~shard:((g + 1) mod shards)
                      ~at:(Shard.now t + 7 + (g mod 3))
                      g))
            [ 0; 1; 2; 3; 4; 5 ])
        ~receive:(fun t g -> log := (Shard.now t, g) :: !log)
        ()
    in
    (List.sort compare !log, Array.fold_left ( + ) 0 stats.Shard.events)
  in
  let one = run 1 in
  List.iter
    (fun shards ->
      check_bool
        (Printf.sprintf "%d shards = 1 shard" shards)
        true
        (run shards = one))
    [ 2; 3; 6 ]

(* ------------------------------------------------------------------ *)
(* Pool *)

let test_pool_invalid_size () =
  Alcotest.check_raises "zero domains"
    (Invalid_argument "Pool.create: num_domains must be >= 1") (fun () ->
      ignore (Pool.create ~oversubscribe:true ~num_domains:0 ()))

let test_pool_ordering () =
  let pool = Pool.create ~oversubscribe:true ~num_domains:4 () in
  let xs = List.init 100 Fun.id in
  Alcotest.(check (list int))
    "order preserved"
    (List.map (fun i -> i * i) xs)
    (Pool.parallel_map ~pool (fun i -> i * i) xs);
  Pool.shutdown pool

let test_pool_exception_propagates () =
  let pool = Pool.create ~oversubscribe:true ~num_domains:3 () in
  Alcotest.check_raises "worker exception re-raised" (Failure "boom 7") (fun () ->
      ignore
        (Pool.parallel_map ~pool
           (fun i -> if i = 7 then failwith "boom 7" else i)
           (List.init 20 Fun.id)));
  (* A failed batch must not poison the pool. *)
  Alcotest.(check (list int))
    "usable after failure" [ 2; 4 ]
    (Pool.parallel_map ~pool (fun x -> 2 * x) [ 1; 2 ]);
  Pool.shutdown pool

let test_pool_map_result_keeps_siblings () =
  let pool = Pool.create ~oversubscribe:true ~num_domains:3 () in
  let rs =
    Pool.parallel_map_result ~pool
      (fun i ->
        if i mod 7 = 3 then failwith (Printf.sprintf "boom %d" i) else i * i)
      (List.init 20 Fun.id)
  in
  check_int "every slot present" 20 (List.length rs);
  List.iteri
    (fun i r ->
      match r with
      | Ok v ->
          check_bool "only non-raising slots succeed" true (i mod 7 <> 3);
          check_int "sibling survives with its value" (i * i) v
      | Error (Failure msg, _) ->
          check_bool "failure in its own slot" true
            (i mod 7 = 3 && msg = Printf.sprintf "boom %d" i)
      | Error _ -> Alcotest.fail "unexpected exception")
    rs;
  (* The pool is not poisoned: a plain map still works after. *)
  Alcotest.(check (list int))
    "usable after failures" [ 2; 4 ]
    (Pool.parallel_map ~pool (fun x -> 2 * x) [ 1; 2 ]);
  Pool.shutdown pool;
  (* The sequential fallback captures exceptions the same way. *)
  match Pool.parallel_map_result (fun i -> if i = 1 then failwith "x" else i) [ 0; 1 ] with
  | [ Ok 0; Error (Failure msg, _) ] when msg = "x" -> ()
  | _ -> Alcotest.fail "sequential fallback differs"

let test_pool_reuse () =
  let pool = Pool.create ~oversubscribe:true ~num_domains:2 () in
  for round = 1 to 5 do
    let xs = List.init 37 (fun i -> i + round) in
    Alcotest.(check (list int))
      "round result" (List.map succ xs)
      (Pool.parallel_map ~pool succ xs)
  done;
  Pool.shutdown pool

let test_pool_single_worker_degenerate () =
  let pool = Pool.create ~oversubscribe:true ~num_domains:1 () in
  check_int "size" 1 (Pool.size pool);
  Alcotest.(check (list int))
    "sequential fallback" [ 1; 4; 9 ]
    (Pool.parallel_map ~pool (fun i -> i * i) [ 1; 2; 3 ]);
  Pool.shutdown pool

let test_pool_nested_map () =
  (* A map inside a worker (sweep -> point) degrades to List.map on
     that worker: same results, no deadlock. *)
  let pool = Pool.create ~oversubscribe:true ~num_domains:2 () in
  let result =
    Pool.parallel_map ~pool
      (fun i -> Pool.parallel_map ~pool (fun j -> (10 * i) + j) [ 0; 1; 2 ])
      (List.init 6 Fun.id)
  in
  Alcotest.(check (list (list int)))
    "nested results"
    (List.init 6 (fun i -> [ 10 * i; (10 * i) + 1; (10 * i) + 2 ]))
    result;
  Pool.shutdown pool

let test_pool_shutdown_rejects () =
  let pool = Pool.create ~oversubscribe:true ~num_domains:2 () in
  Pool.shutdown pool;
  Pool.shutdown pool;
  (* idempotent *)
  Alcotest.check_raises "submit after shutdown"
    (Invalid_argument "Pool.submit: pool is shut down") (fun () ->
      ignore (Pool.parallel_map ~pool Fun.id [ 1; 2; 3 ]))

let test_pool_default_jobs () =
  check_int "initially sequential" 1 (Pool.default_jobs ());
  Alcotest.(check (list int))
    "no default pool" [ 2; 3 ]
    (Pool.parallel_map succ [ 1; 2 ]);
  Pool.set_default_jobs 3;
  check_int "configured" 3 (Pool.default_jobs ());
  Alcotest.(check (list int))
    "default pool used"
    (List.init 50 (fun i -> i * 3))
    (Pool.parallel_map (fun i -> i * 3) (List.init 50 Fun.id));
  Pool.set_default_jobs 1;
  check_int "back to sequential" 1 (Pool.default_jobs ())

(* A raw submitted job that raises must not silently kill its worker
   and deadlock the next parallel_map: the pool poisons, waiters wake,
   and the original exception resurfaces.  [submit] probes until the
   poison has landed so the assertions that follow are race-free. *)
let wait_poisoned pool =
  let rec go () =
    match Pool.submit pool ignore with
    | () ->
        Domain.cpu_relax ();
        go ()
    | exception e -> e
  in
  go ()

let test_pool_poison_fail_fast () =
  let pool = Pool.create ~oversubscribe:true ~num_domains:2 () in
  Pool.submit pool (fun () -> failwith "raw boom");
  check_bool "poison observed" true (wait_poisoned pool = Failure "raw boom");
  Alcotest.check_raises "parallel_map re-raises the poison"
    (Failure "raw boom") (fun () ->
      ignore (Pool.parallel_map ~pool succ (List.init 10 Fun.id)));
  Alcotest.check_raises "submit re-raises the poison" (Failure "raw boom")
    (fun () -> Pool.submit pool ignore);
  (* Shutdown after poisoning stays clean: the workers already exited. *)
  Pool.shutdown pool;
  Pool.shutdown pool

let test_pool_poison_first_exception_wins () =
  let pool = Pool.create ~oversubscribe:true ~num_domains:2 () in
  Pool.submit pool (fun () -> failwith "first");
  check_bool "poison observed" true (wait_poisoned pool = Failure "first");
  Alcotest.check_raises "later failures cannot displace it" (Failure "first")
    (fun () -> Pool.submit pool (fun () -> failwith "second"));
  Alcotest.check_raises "parallel_map reports the original" (Failure "first")
    (fun () -> ignore (Pool.parallel_map ~pool succ [ 1; 2; 3 ]));
  Pool.shutdown pool

let test_pool_clamped_to_cores () =
  (* Without [oversubscribe] the worker count is capped so that
     executors (workers + the helping submitter) never exceed the
     machine's concurrency; the map must still be correct even when
     the cap leaves zero workers. *)
  let pool = Pool.create ~num_domains:64 () in
  check_bool "workers clamped to cores" true
    (Pool.size pool <= max 0 (Domain.recommended_domain_count () - 1));
  Alcotest.(check (list int))
    "clamped pool still maps"
    (List.init 100 succ)
    (Pool.parallel_map ~pool succ (List.init 100 Fun.id));
  Pool.shutdown pool

let test_pool_shutdown_with_pending_jobs () =
  (* Exception-free variant of a mid-flight shutdown: jobs that never
     ran must surface as a clean error, not a hang. *)
  let pool = Pool.create ~oversubscribe:true ~num_domains:2 () in
  Pool.shutdown pool;
  Alcotest.check_raises "abandoned batch"
    (Invalid_argument "Pool.submit: pool is shut down") (fun () ->
      ignore (Pool.parallel_map ~pool succ [ 1; 2; 3 ]))

let test_pool_stats_invariant () =
  (* Once a map has returned the pool is quiescent and every executed
     task must have a provenance: popped locally, stolen, or taken
     from the injector.  The tiny deque forces ring growth while the
     oversubscribed workers steal from the submitter's deque. *)
  let pool =
    Pool.create ~oversubscribe:true ~num_domains:3 ~deque_capacity:2 ()
  in
  Fun.protect ~finally:(fun () -> Pool.shutdown pool) @@ fun () ->
  let n = 400 in
  Alcotest.(check (list int))
    "map correct" (List.init n (fun i -> i * i))
    (Pool.parallel_map ~pool (fun i -> i * i) (List.init n Fun.id));
  let s = Pool.stats pool in
  check_int "executors = workers + submitter" (Pool.size pool + 1)
    s.Pool.executors;
  check_int "total executed = tasks submitted" n
    (Array.fold_left ( + ) 0 s.Pool.executed);
  Array.iteri
    (fun i e ->
      check_int
        (Printf.sprintf "executor %d: executed = pops + steals + injected" i)
        e
        (s.Pool.local_pops.(i) + s.Pool.steals.(i) + s.Pool.injected_runs.(i)))
    s.Pool.executed;
  (* Workers own empty deques — nothing ever pushes to them — so any
     work they did must have been stolen or injected. *)
  for i = 0 to Pool.size pool - 1 do
    check_int
      (Printf.sprintf "worker %d never pops its own deque" i)
      0 s.Pool.local_pops.(i)
  done;
  Pool.reset_stats pool;
  let z = Pool.stats pool in
  check_int "reset_stats zeroes" 0
    (Array.fold_left ( + ) 0 z.Pool.executed
    + Array.fold_left ( + ) 0 z.Pool.local_pops
    + Array.fold_left ( + ) 0 z.Pool.steals
    + Array.fold_left ( + ) 0 z.Pool.failed_steals
    + Array.fold_left ( + ) 0 z.Pool.injected_runs)

(* The tentpole determinism property: a pool rigged to maximise
   stealing — oversubscribed workers, a deque that starts at capacity
   2 and must grow mid-map, task costs that vary by orders of
   magnitude — still produces exactly [List.map]'s output. *)
let pool_forced_steal_identity =
  QCheck.Test.make ~name:"forced-steal parallel_map = List.map" ~count:15
    QCheck.(small_list small_nat)
    (fun costs ->
      let pool =
        Pool.create ~oversubscribe:true ~num_domains:3 ~deque_capacity:2 ()
      in
      Fun.protect ~finally:(fun () -> Pool.shutdown pool) @@ fun () ->
      let f c =
        (* spin proportional to the generated cost: uneven tasks leave
           idle executors to steal the submitter's backlog *)
        let acc = ref (c + 1) in
        for _ = 1 to c * 500 do
          acc := ((!acc * 31) + 7) land 0xFFFFFF
        done;
        (c, !acc)
      in
      Pool.parallel_map ~pool f costs = List.map f costs)

(* ------------------------------------------------------------------ *)
(* More distributions *)

let test_poisson_mean () =
  let rng = Rng.create 21 in
  let n = 20_000 in
  let s = ref 0 in
  for _ = 1 to n do
    s := !s + Rng.poisson rng ~lambda:3.5
  done;
  let mean = float_of_int !s /. float_of_int n in
  check_bool "mean near 3.5" true (abs_float (mean -. 3.5) < 0.1)

let test_poisson_large_lambda () =
  let rng = Rng.create 22 in
  let n = 5_000 in
  let s = ref 0 in
  for _ = 1 to n do
    s := !s + Rng.poisson rng ~lambda:100.0
  done;
  let mean = float_of_int !s /. float_of_int n in
  check_bool "normal approximation tracks" true (abs_float (mean -. 100.0) < 2.0)

let test_poisson_zero () =
  let rng = Rng.create 23 in
  check_int "lambda 0" 0 (Rng.poisson rng ~lambda:0.0)

let test_lognormal_positive () =
  let rng = Rng.create 24 in
  for _ = 1 to 1_000 do
    check_bool "positive" true (Rng.lognormal rng ~mu:0.0 ~sigma:1.0 > 0.0)
  done

let test_pareto_support () =
  let rng = Rng.create 25 in
  for _ = 1 to 1_000 do
    check_bool "at least scale" true (Rng.pareto rng ~scale:2.0 ~shape:1.5 >= 2.0)
  done

let test_normal_quantile_symmetry () =
  Alcotest.(check (float 1e-6)) "median" 0.0 (Rng.normal_quantile 0.5);
  check_bool "symmetric" true
    (abs_float (Rng.normal_quantile 0.975 +. Rng.normal_quantile 0.025) < 1e-6);
  check_bool "97.5th percentile" true
    (abs_float (Rng.normal_quantile 0.975 -. 1.95996) < 1e-3)

let test_chart_logx () =
  let s =
    { Table.label = "scaling"; points = List.init 12 (fun i -> (float_of_int (1 lsl i), 1.0)) }
  in
  let out = Table.chart ~logx:true ~title:"log sweep" [ s ] in
  check_bool "mentions log scale" true
    (contains_substring out "log scale")

let test_histogram_pp_smoke () =
  let h = Stats.Histogram.create () in
  List.iter (Stats.Histogram.add h) [ 1.0; 10.0; 100.0; 1000.0 ];
  let out = Format.asprintf "%a" Stats.Histogram.pp h in
  check_bool "renders bars" true (String.length out > 20)

let qsuite tests = List.map QCheck_alcotest.to_alcotest tests

let () =
  Alcotest.run "mk_engine"
    [
      ( "units",
        [
          Alcotest.test_case "constants" `Quick test_units_constants;
          Alcotest.test_case "conversions" `Quick test_units_conversions;
          Alcotest.test_case "pretty printing" `Quick test_units_pp;
          Alcotest.test_case "transfer time" `Quick test_transfer_time;
        ] );
      ( "rng",
        [
          Alcotest.test_case "deterministic" `Quick test_rng_deterministic;
          Alcotest.test_case "seed sensitivity" `Quick test_rng_seed_sensitivity;
          Alcotest.test_case "split independence" `Quick test_rng_split_independent;
          Alcotest.test_case "int bounds" `Quick test_rng_int_bounds;
          Alcotest.test_case "float bounds" `Quick test_rng_float_bounds;
          Alcotest.test_case "exponential mean" `Quick test_rng_exponential_mean;
          Alcotest.test_case "normal moments" `Quick test_rng_normal_moments;
          Alcotest.test_case "shuffle permutation" `Quick test_rng_shuffle_permutation;
        ] );
      ( "heap",
        Alcotest.test_case "ordering" `Quick test_heap_ordering
        :: Alcotest.test_case "fifo ties" `Quick test_heap_fifo_ties
        :: Alcotest.test_case "pop empty" `Quick test_heap_pop_empty
        :: Alcotest.test_case "grow" `Quick test_heap_grow
        :: qsuite [ heap_qcheck; heap_stable_queue_qcheck ] );
      ( "sim",
        [
          Alcotest.test_case "fires in order" `Quick test_sim_fires_in_order;
          Alcotest.test_case "cancel" `Quick test_sim_cancel;
          Alcotest.test_case "cancel accounting" `Quick
            test_sim_cancel_accounting;
          Alcotest.test_case "schedule from handler" `Quick
            test_sim_schedule_from_handler;
          Alcotest.test_case "run until" `Quick test_sim_run_until;
          Alcotest.test_case "past rejected" `Quick test_sim_past_rejected;
          Alcotest.test_case "advance_to" `Quick test_sim_advance_to;
        ]
        @ qsuite [ sim_random_cancels_qcheck ] );
      ( "stats",
        Alcotest.test_case "summary basic" `Quick test_summary_basic
        :: Alcotest.test_case "summary merge" `Quick test_summary_merge
        :: Alcotest.test_case "median" `Quick test_sample_median
        :: Alcotest.test_case "percentile" `Quick test_sample_percentile
        :: Alcotest.test_case "minmax" `Quick test_sample_minmax
        :: Alcotest.test_case "histogram" `Quick test_histogram_buckets
        :: qsuite [ summary_matches_sample ] );
      ( "json",
        [
          Alcotest.test_case "scalars" `Quick test_json_scalars;
          Alcotest.test_case "escaping" `Quick test_json_escaping;
          Alcotest.test_case "structures" `Quick test_json_structures;
          Alcotest.test_case "empty containers" `Quick test_json_empty_containers;
          Alcotest.test_case "parse scalars" `Quick test_json_parse_scalars;
          Alcotest.test_case "parse escapes" `Quick test_json_parse_escapes;
          Alcotest.test_case "parse structures" `Quick test_json_parse_structures;
          Alcotest.test_case "parse errors" `Quick test_json_parse_errors;
          Alcotest.test_case "roundtrip" `Quick test_json_roundtrip;
        ] );
      ( "atomic-file",
        [
          Alcotest.test_case "roundtrip" `Quick test_atomic_roundtrip;
          Alcotest.test_case "partial write invisible" `Quick
            test_atomic_partial_write_invisible;
          Alcotest.test_case "crash hook" `Quick test_atomic_crash_hook;
          Alcotest.test_case "typed corruption" `Quick test_atomic_corrupt_typed;
          Alcotest.test_case "concurrent writers" `Quick
            test_atomic_concurrent_writers;
        ] );
      ( "journal",
        [
          Alcotest.test_case "roundtrip" `Quick test_journal_roundtrip;
          Alcotest.test_case "torn tail" `Quick test_journal_torn_tail;
          Alcotest.test_case "torn tail repaired on append" `Quick
            test_journal_torn_tail_repaired_on_append;
          Alcotest.test_case "record-only" `Quick test_journal_record_only;
        ] );
      ( "distributions",
        [
          Alcotest.test_case "poisson mean" `Slow test_poisson_mean;
          Alcotest.test_case "poisson large lambda" `Slow test_poisson_large_lambda;
          Alcotest.test_case "poisson zero" `Quick test_poisson_zero;
          Alcotest.test_case "lognormal positive" `Quick test_lognormal_positive;
          Alcotest.test_case "pareto support" `Quick test_pareto_support;
          Alcotest.test_case "normal quantile" `Quick test_normal_quantile_symmetry;
        ] );
      ( "deque",
        [
          Alcotest.test_case "lifo pop" `Quick test_deque_lifo_pop;
          Alcotest.test_case "fifo steal" `Quick test_deque_fifo_steal;
          Alcotest.test_case "invalid capacity" `Quick
            test_deque_invalid_capacity;
          Alcotest.test_case "ring growth" `Quick test_deque_growth;
          Alcotest.test_case "cross-domain steal stress" `Quick
            test_deque_cross_domain_steal;
        ] );
      ( "mailbox",
        [
          Alcotest.test_case "fifo" `Quick test_mailbox_fifo;
          Alcotest.test_case "cross-domain stress" `Quick
            test_mailbox_cross_domain;
        ] );
      ( "shard",
        [
          Alcotest.test_case "invalid args" `Quick test_shard_invalid_args;
          Alcotest.test_case "lookahead contract" `Quick
            test_shard_lookahead_contract;
          Alcotest.test_case "ping pong" `Quick test_shard_ping_pong;
          Alcotest.test_case "shard count invariance" `Quick
            test_shard_single_equals_many;
        ] );
      ( "pool",
        [
          Alcotest.test_case "invalid size" `Quick test_pool_invalid_size;
          Alcotest.test_case "ordering preserved" `Quick test_pool_ordering;
          Alcotest.test_case "exception propagates" `Quick
            test_pool_exception_propagates;
          Alcotest.test_case "map_result keeps siblings" `Quick
            test_pool_map_result_keeps_siblings;
          Alcotest.test_case "pool reuse" `Quick test_pool_reuse;
          Alcotest.test_case "single worker degenerate" `Quick
            test_pool_single_worker_degenerate;
          Alcotest.test_case "nested map" `Quick test_pool_nested_map;
          Alcotest.test_case "shutdown rejects" `Quick test_pool_shutdown_rejects;
          Alcotest.test_case "default jobs" `Quick test_pool_default_jobs;
          Alcotest.test_case "poison fail-fast" `Quick test_pool_poison_fail_fast;
          Alcotest.test_case "poison keeps first exception" `Quick
            test_pool_poison_first_exception_wins;
          Alcotest.test_case "shutdown with pending jobs" `Quick
            test_pool_shutdown_with_pending_jobs;
          Alcotest.test_case "clamped to cores" `Quick test_pool_clamped_to_cores;
          Alcotest.test_case "stats provenance invariant" `Quick
            test_pool_stats_invariant;
        ]
        @ qsuite [ pool_forced_steal_identity ] );
      ( "table",
        [
          Alcotest.test_case "render" `Quick test_table_render;
          Alcotest.test_case "csv" `Quick test_csv;
          Alcotest.test_case "chart" `Quick test_chart_smoke;
          Alcotest.test_case "chart empty" `Quick test_chart_empty;
          Alcotest.test_case "chart logx" `Quick test_chart_logx;
          Alcotest.test_case "histogram pp" `Quick test_histogram_pp_smoke;
        ] );
    ]
