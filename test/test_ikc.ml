(* Tests for inter-kernel communication: channels, topology-aware
   routing and the two offload mechanisms. *)

open Mk_ikc

let check_int = Alcotest.(check int)
let check_bool = Alcotest.(check bool)

let topo = Mk_hw.Knl.topology Mk_hw.Knl.Snc4_flat
let linux_cores = [ 0; 1; 2; 3 ]

let test_channel_quadrant_latency () =
  (* Cores 0..16 share quadrant 0; core 20 is in quadrant 1. *)
  let same = Channel.make ~topo ~lwk_core:10 ~linux_core:0 in
  let cross = Channel.make ~topo ~lwk_core:20 ~linux_core:0 in
  check_bool "same quadrant flagged" true same.Channel.same_quadrant;
  check_bool "cross quadrant flagged" false cross.Channel.same_quadrant;
  check_bool "cross is slower" true
    (Channel.latency cross ~payload:64 > Channel.latency same ~payload:64)

let test_channel_payload_cost () =
  let ch = Channel.make ~topo ~lwk_core:10 ~linux_core:0 in
  check_bool "bigger payload slower" true
    (Channel.latency ch ~payload:65536 > Channel.latency ch ~payload:64)

let test_channel_accounting () =
  let ch = Channel.make ~topo ~lwk_core:10 ~linux_core:0 in
  ignore (Channel.send ch ~payload:100);
  ignore (Channel.send ch ~payload:28);
  check_int "messages" 2 ch.Channel.messages;
  check_int "bytes" 128 ch.Channel.bytes

let test_router_prefers_same_quadrant () =
  (* All four Linux cores sit in quadrant 0 (cores 0-3), so an LWK
     core in quadrant 0 routes locally. *)
  let r = Router.make ~topo ~linux_cores in
  check_bool "quadrant-0 core routes to quadrant-0 linux core" true
    (List.mem (Router.linux_target r ~lwk_core:10) linux_cores);
  let ch = Router.channel r ~lwk_core:10 in
  check_bool "same quadrant channel" true ch.Channel.same_quadrant

let test_router_round_robin_fallback () =
  let r = Router.make ~topo ~linux_cores in
  (* Quadrant-2 cores have no local Linux core: deterministic spread. *)
  let t1 = Router.linux_target r ~lwk_core:40 in
  let t2 = Router.linux_target r ~lwk_core:41 in
  check_bool "targets valid" true (List.mem t1 linux_cores && List.mem t2 linux_cores);
  check_bool "spread differs" true (t1 <> t2)

let test_router_channel_cached () =
  let r = Router.make ~topo ~linux_cores in
  let a = Router.channel r ~lwk_core:10 in
  let b = Router.channel r ~lwk_core:10 in
  check_bool "same channel object" true (a == b)

let test_router_rejects_empty () =
  check_bool "no linux cores" true
    (try
       ignore (Router.make ~topo ~linux_cores:[]);
       false
     with Invalid_argument _ -> true)

let mk_offload mech =
  Offload.make mech ~router:(Router.make ~topo ~linux_cores)

let test_offload_cost_exceeds_local () =
  List.iter
    (fun mech ->
      let off = mk_offload mech in
      List.iter
        (fun sysno ->
          let c = Offload.cost off ~lwk_core:10 ~sysno () in
          check_bool "offload above native" true (c > Mk_syscall.Cost.local sysno))
        [ Mk_syscall.Sysno.Getppid; Mk_syscall.Sysno.Open; Mk_syscall.Sysno.Ioctl ])
    [ Offload.default_proxy; Offload.default_migration ]

let test_offload_overhead_orders () =
  (* Both mechanisms add microseconds; the proxy's wakeup makes it a
     bit dearer than thread migration. *)
  let proxy = mk_offload Offload.default_proxy in
  let migration = mk_offload Offload.default_migration in
  let po = Offload.overhead proxy ~lwk_core:10 () in
  let mo = Offload.overhead migration ~lwk_core:10 () in
  check_bool "proxy in microseconds" true (po > 1_000 && po < 20_000);
  check_bool "migration in microseconds" true (mo > 1_000 && mo < 20_000);
  check_bool "proxy dearer" true (po > mo)

let test_offload_stats () =
  let off = mk_offload Offload.default_proxy in
  ignore (Offload.cost off ~lwk_core:10 ~sysno:Mk_syscall.Sysno.Read ());
  ignore (Offload.cost off ~lwk_core:10 ~sysno:Mk_syscall.Sysno.Write ());
  let s = Offload.stats off in
  check_int "two offloads" 2 s.Offload.offloads;
  check_bool "transport accounted" true (s.Offload.transport_time > 0);
  check_bool "execution accounted" true (s.Offload.execution_time > 0)

let offload_deterministic =
  QCheck.Test.make ~name:"offload cost is deterministic per core" ~count:100
    QCheck.(int_range 4 67)
    (fun core ->
      let off = mk_offload Offload.default_proxy in
      let a = Offload.cost off ~lwk_core:core ~sysno:Mk_syscall.Sysno.Read () in
      let b = Offload.cost off ~lwk_core:core ~sysno:Mk_syscall.Sysno.Read () in
      a = b)

let qsuite tests = List.map QCheck_alcotest.to_alcotest tests

let () =
  Alcotest.run "mk_ikc"
    [
      ( "channel",
        [
          Alcotest.test_case "quadrant latency" `Quick test_channel_quadrant_latency;
          Alcotest.test_case "payload cost" `Quick test_channel_payload_cost;
          Alcotest.test_case "accounting" `Quick test_channel_accounting;
        ] );
      ( "router",
        [
          Alcotest.test_case "same quadrant preferred" `Quick
            test_router_prefers_same_quadrant;
          Alcotest.test_case "round robin fallback" `Quick
            test_router_round_robin_fallback;
          Alcotest.test_case "channel cached" `Quick test_router_channel_cached;
          Alcotest.test_case "rejects empty" `Quick test_router_rejects_empty;
        ] );
      ( "offload",
        Alcotest.test_case "costs exceed local" `Quick test_offload_cost_exceeds_local
        :: Alcotest.test_case "overhead orders" `Quick test_offload_overhead_orders
        :: Alcotest.test_case "stats" `Quick test_offload_stats
        :: qsuite [ offload_deterministic ] );
    ]
