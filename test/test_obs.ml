(* mk_obs: metric identity and registry semantics, trace ordering and
   Perfetto export, counter attribution against known driver fixtures,
   and the determinism contract — the merged trace and metrics must be
   byte-identical between a sequential and an oversubscribed parallel
   fan-out of the same experiment. *)

open Mk_obs

let check_int = Alcotest.(check int)
let check_bool = Alcotest.(check bool)
let check_string = Alcotest.(check string)

let key ?node ~kernel ~subsystem ~name () = Key.v ?node ~kernel ~subsystem ~name ()

(* ------------------------------------------------------------------ *)
(* Key: the total order every export sorts by *)

let test_key_order () =
  let k = key ~kernel:"McKernel" ~subsystem:"mem" ~name:"faults" () in
  check_int "equal keys" 0 (Key.compare k k);
  let lt a b = check_bool "strict order" true (Key.compare a b < 0) in
  lt
    (key ~kernel:"Linux" ~subsystem:"z" ~name:"z" ())
    (key ~kernel:"McKernel" ~subsystem:"a" ~name:"a" ());
  lt
    (key ~kernel:"k" ~subsystem:"mem" ~name:"z" ())
    (key ~node:0 ~kernel:"k" ~subsystem:"aaa" ~name:"a" ());
  lt
    (key ~node:0 ~kernel:"k" ~subsystem:"mem" ~name:"a" ())
    (key ~node:0 ~kernel:"k" ~subsystem:"mem" ~name:"b" ());
  check_bool "job_wide sorts before node 0" true
    (Key.compare
       (key ~kernel:"k" ~subsystem:"s" ~name:"n" ())
       (key ~node:0 ~kernel:"k" ~subsystem:"s" ~name:"n" ())
    < 0)

let test_key_labels () =
  check_string "job-wide label" "*" (Key.node_label Key.job_wide);
  check_string "node label" "3" (Key.node_label 3);
  check_string "to_string" "McKernel/0/mem/demand_faults"
    (Key.to_string (key ~node:0 ~kernel:"McKernel" ~subsystem:"mem"
                      ~name:"demand_faults" ()))

(* ------------------------------------------------------------------ *)
(* Metrics: counters, gauges, histograms, absorb *)

let test_metrics_counters () =
  let m = Metrics.create () in
  let k = key ~kernel:"k" ~subsystem:"s" ~name:"c" () in
  check_int "absent counter reads 0" 0 (Metrics.counter m k);
  Metrics.add m k 2;
  Metrics.add m k 3;
  check_int "counter accumulates" 5 (Metrics.counter m k)

let test_metrics_gauge_histogram () =
  let m = Metrics.create () in
  let g = key ~kernel:"k" ~subsystem:"s" ~name:"g" () in
  Metrics.set_gauge m g 7;
  Metrics.set_gauge m g 3;
  (match List.assoc_opt g (Metrics.bindings m) with
  | Some (Metrics.Gauge { last; peak }) ->
      check_int "gauge last" 3 last;
      check_int "gauge peak" 7 peak
  | _ -> Alcotest.fail "gauge binding missing");
  let h = key ~kernel:"k" ~subsystem:"s" ~name:"h" () in
  List.iter (fun v -> Metrics.observe m h v) [ 1; 4; 4; 100 ];
  match List.assoc_opt h (Metrics.bindings m) with
  | Some (Metrics.Histogram hist) ->
      check_int "histogram count" 4 hist.Metrics.count;
      check_int "histogram sum" 109 hist.Metrics.sum;
      check_int "histogram min" 1 hist.Metrics.min;
      check_int "histogram max" 100 hist.Metrics.max;
      check_int "bucket of 4" (Metrics.bucket_of 4)
        (* two 4s landed in one bucket *)
        (fst
           (List.find (fun (_, n) -> n = 2) hist.Metrics.buckets))
  | _ -> Alcotest.fail "histogram binding missing"

let test_metrics_sorted_and_absorb () =
  (* Insertion order must not leak into bindings. *)
  let build order =
    let m = Metrics.create () in
    List.iter
      (fun name -> Metrics.add m (key ~kernel:"k" ~subsystem:"s" ~name ()) 1)
      order;
    Metrics.bindings m
  in
  check_bool "bindings independent of insertion order" true
    (build [ "a"; "b"; "c" ] = build [ "c"; "a"; "b" ]);
  (* absorb: counters add, gauges keep later last / max peak,
     histograms merge pointwise. *)
  let a = Metrics.create () and b = Metrics.create () in
  let c = key ~kernel:"k" ~subsystem:"s" ~name:"c" () in
  let g = key ~kernel:"k" ~subsystem:"s" ~name:"g" () in
  Metrics.add a c 2;
  Metrics.set_gauge a g 9;
  Metrics.add b c 3;
  Metrics.set_gauge b g 4;
  Metrics.absorb a (Metrics.bindings b);
  check_int "absorbed counter" 5 (Metrics.counter a c);
  match List.assoc_opt g (Metrics.bindings a) with
  | Some (Metrics.Gauge { last; peak }) ->
      check_int "absorbed gauge last" 4 last;
      check_int "absorbed gauge peak" 9 peak
  | _ -> Alcotest.fail "absorbed gauge missing"

(* ------------------------------------------------------------------ *)
(* Trace: (ts, seq) order and the Chrome trace-event document *)

let test_trace_order () =
  let t = Trace.create () in
  Trace.span t ~ts:50 ~dur:10 ~pid:1 ~tid:0 ~cat:"c" ~name:"late" ();
  Trace.instant t ~ts:10 ~pid:1 ~tid:0 ~cat:"c" ~name:"early" ();
  Trace.instant t ~ts:10 ~pid:2 ~tid:0 ~cat:"c" ~name:"early2" ();
  check_int "length" 3 (Trace.length t);
  (match Trace.sort (Trace.events t) with
  | [ a; b; c ] ->
      check_string "ts orders first" "early" a.Trace.name;
      (* equal ts: the stable seq assigned at record time breaks the tie *)
      check_string "seq breaks ties" "early2" b.Trace.name;
      check_string "latest last" "late" c.Trace.name
  | _ -> Alcotest.fail "expected 3 events");
  (* record order is preserved by [events] itself *)
  match Trace.events t with
  | e :: _ -> check_string "record order kept" "late" e.Trace.name
  | [] -> Alcotest.fail "no events"

let test_trace_json_shape () =
  let t = Trace.create () in
  Trace.span t ~ts:1000 ~dur:500 ~pid:1 ~tid:0 ~cat:"phase" ~name:"setup" ();
  Trace.instant t ~ts:2000 ~pid:1 ~tid:1 ~cat:"fault" ~name:"crash" ();
  let doc =
    Trace.to_json
      ~processes:[ (1, "node 0") ]
      ~threads:[ (1, 0, "clock"); (1, 1, "mpi") ]
      (Trace.events t)
  in
  match doc with
  | Mk_engine.Json.Obj fields ->
      (match List.assoc_opt "traceEvents" fields with
      | Some (Mk_engine.Json.List evs) ->
          let ph e =
            match e with
            | Mk_engine.Json.Obj f -> (
                match List.assoc_opt "ph" f with
                | Some (Mk_engine.Json.String s) -> s
                | _ -> "?")
            | _ -> "?"
          in
          let phases = List.map ph evs in
          check_bool "metadata events present" true (List.mem "M" phases);
          check_bool "span present" true (List.mem "X" phases);
          check_bool "instant present" true (List.mem "i" phases);
          (* ts/dur are microseconds: the 1000 ns span must read 1.0/0.5 *)
          List.iter
            (fun e ->
              match e with
              | Mk_engine.Json.Obj f when List.assoc_opt "ph" f = Some (Mk_engine.Json.String "X")
                -> (
                  check_bool "ts in us" true
                    (List.assoc_opt "ts" f = Some (Mk_engine.Json.Float 1.0));
                  match List.assoc_opt "dur" f with
                  | Some (Mk_engine.Json.Float d) ->
                      Alcotest.(check (float 1e-9)) "dur in us" 0.5 d
                  | _ -> Alcotest.fail "span lacks dur")
              | _ -> ())
            evs
      | _ -> Alcotest.fail "no traceEvents list")
  | _ -> Alcotest.fail "trace document is not an object"

let test_perfetto_round_trip () =
  let c = Collect.create ~trace:true () in
  let r = Recorder.make ~trace:true ~label:"McKernel" ~nodes:2 ~seed:1 () in
  Recorder.span r ~ts:10 ~dur:5 ~node:0 ~tid:0 ~cat:"phase" ~name:"setup" ();
  Recorder.instant r ~ts:20 ~node:1 ~tid:0 ~cat:"fault" ~name:"crash" ();
  Recorder.count r ~subsystem:"mem" ~name:"demand_faults" 3;
  Collect.add c (Recorder.snapshot r);
  let s = Mk_engine.Json.to_string (Collect.trace_json c) in
  match Mk_engine.Json.of_string s with
  | Error e -> Alcotest.fail ("trace does not parse back: " ^ e)
  | Ok (Mk_engine.Json.Obj fields) ->
      check_bool "round-trips to the same document" true
        (Mk_engine.Json.of_string s = Ok (Collect.trace_json c));
      (match List.assoc_opt "traceEvents" fields with
      | Some (Mk_engine.Json.List evs) ->
          (* 2 events + process/thread metadata for the tracks used *)
          check_bool "events plus metadata" true (List.length evs > 2)
      | _ -> Alcotest.fail "parsed document lacks traceEvents");
      check_bool "display unit ns" true
        (List.assoc_opt "displayTimeUnit" fields
        = Some (Mk_engine.Json.String "ns"))
  | Ok _ -> Alcotest.fail "parsed document is not an object"

(* ------------------------------------------------------------------ *)
(* Hook: ambient sink installs and restores *)

let test_hook_ambient () =
  check_bool "initially disabled" true (Hook.active () = None);
  Hook.count ~subsystem:"s" ~name:"ignored" 1 (* must be a no-op *);
  let r = Recorder.make ~label:"k" ~nodes:1 ~seed:0 () in
  let inside =
    Hook.with_recorder r (fun () ->
        Hook.count ~subsystem:"s" ~name:"c" 2;
        Hook.count_node ~node:0 ~subsystem:"s" ~name:"c" 1;
        Hook.active () <> None)
  in
  check_bool "active inside" true inside;
  check_bool "restored after" true (Hook.active () = None);
  check_int "job-wide count" 2
    (Metrics.counter (Recorder.metrics r) (key ~kernel:"k" ~subsystem:"s" ~name:"c" ()));
  check_int "node count" 1
    (Metrics.counter (Recorder.metrics r)
       (key ~node:0 ~kernel:"k" ~subsystem:"s" ~name:"c" ()))

(* ------------------------------------------------------------------ *)
(* Attribution fixtures: a known 2-node scenario yields exact counts *)

let app name = Option.get (Mk_apps.Registry.find name)

let traced_run scenario name =
  let label = scenario.Mk_cluster.Scenario.label in
  let r = Recorder.make ~label ~nodes:2 ~seed:42 () in
  let res =
    Mk_cluster.Driver.run ~obs:r ~scenario ~app:(app name) ~nodes:2 ~seed:42 ()
  in
  (res, Recorder.metrics r, label)

let counter_total m ~kernel ~subsystem ~name =
  List.fold_left
    (fun acc ((k : Key.t), v) ->
      match v with
      | Metrics.Counter n
        when k.Key.kernel = kernel && k.Key.subsystem = subsystem
             && k.Key.name = name ->
          acc + n
      | _ -> acc)
    0 (Metrics.bindings m)

let test_attribution_mckernel () =
  let res, m, kernel = traced_run Mk_cluster.Scenario.mckernel "lammps" in
  (* The driver's headline fault count is the demand faults of the
     representative node — the registry must agree exactly. *)
  check_int "demand faults = driver faults" res.Mk_cluster.Driver.faults
    (Metrics.counter m
       (key ~node:0 ~kernel ~subsystem:"mem" ~name:"demand_faults" ()));
  check_bool "LWK offloads NIC control syscalls" true
    (counter_total m ~kernel ~subsystem:"ikc" ~name:"proxy_roundtrips" > 0);
  check_bool "halo exchanges counted" true
    (counter_total m ~kernel ~subsystem:"mpi" ~name:"halo_calls" > 0)

let test_attribution_linux () =
  let res, m, kernel = traced_run Mk_cluster.Scenario.linux "lammps" in
  check_int "demand faults = driver faults" res.Mk_cluster.Driver.faults
    (Metrics.counter m
       (key ~node:0 ~kernel ~subsystem:"mem" ~name:"demand_faults" ()));
  check_bool "linux faults every iteration" true
    (res.Mk_cluster.Driver.faults > 0);
  (* No LWK, no offload machinery: the proxy counter must not exist. *)
  check_int "no proxy roundtrips on Linux" 0
    (counter_total m ~kernel ~subsystem:"ikc" ~name:"proxy_roundtrips")

let test_lulesh_trace_counts () =
  let trace = Mk_apps.Lulesh_trace.full_trace ~scale:1.0 in
  let q, g, s = Mk_apps.Lulesh_trace.count_stats trace in
  check_int "queries" Mk_apps.Lulesh_trace.expected_queries q;
  check_int "grows" Mk_apps.Lulesh_trace.expected_grows g;
  check_int "shrinks" Mk_apps.Lulesh_trace.expected_shrinks s;
  (* The generalized recorder path lands in the same keys the live
     mem hooks use, attributed to the caller's kernel label. *)
  let m = Metrics.create () in
  Mk_apps.Lulesh_trace.record m ~kernel:"mOS" trace;
  check_int "registry agrees" Mk_apps.Lulesh_trace.expected_grows
    (Metrics.counter m (key ~kernel:"mOS" ~subsystem:"mem" ~name:"brk_grows" ()))

(* ------------------------------------------------------------------ *)
(* Pool_stats: the scheduler-counter bridge into Metrics *)

let test_pool_stats_counters_sum () =
  (* The bridge must conserve work: across every executor, the
     provenance counters (local pops + steals + injector runs) and the
     executed gauges each sum to the total number of jobs the map
     ran. *)
  let pool = Mk_engine.Pool.create ~oversubscribe:true ~num_domains:2 () in
  Fun.protect ~finally:(fun () -> Mk_engine.Pool.shutdown pool) @@ fun () ->
  let n = 256 in
  ignore (Mk_engine.Pool.parallel_map ~pool succ (List.init n Fun.id));
  let s = Mk_engine.Pool.stats pool in
  let m = Pool_stats.to_metrics s in
  let sum name =
    List.fold_left
      (fun acc ((k : Key.t), v) ->
        if
          k.Key.kernel = Pool_stats.kernel
          && k.Key.subsystem = Pool_stats.subsystem
          && k.Key.name = name
        then
          acc
          + (match v with
            | Metrics.Counter c -> c
            | Metrics.Gauge { last; _ } -> last
            | Metrics.Histogram _ -> 0)
        else acc)
      0 (Metrics.bindings m)
  in
  check_int "executed gauges sum to total jobs" n (sum "executed");
  check_int "steal counters sum to total executed jobs" n
    (sum "local_pops" + sum "steals" + sum "injected_runs");
  (* One executed gauge per executor, attributed to its slot. *)
  let gauges =
    List.filter
      (fun ((k : Key.t), _) -> k.Key.name = "executed")
      (Metrics.bindings m)
  in
  check_int "one gauge per executor" s.Mk_engine.Pool.executors
    (List.length gauges);
  check_bool "json export well-formed" true
    (match Pool_stats.to_json s with Mk_engine.Json.Obj _ -> true | _ -> false)

(* ------------------------------------------------------------------ *)
(* Determinism: sequential and -j 2 exports byte-identical *)

let export_bytes ?pool seed =
  let c = Collect.create ~trace:true () in
  ignore
    (Mk_cluster.Experiment.point ?pool ~obs:c
       ~scenario:Mk_cluster.Scenario.mckernel ~app:(app "hpcg") ~nodes:4
       ~runs:3 ~seed ());
  ( Mk_engine.Json.to_string (Collect.trace_json c),
    Mk_engine.Json.to_string (Collect.metrics_json c) )

let trace_identity =
  QCheck.Test.make ~name:"trace & metrics: -j 2 = sequential" ~count:4
    QCheck.small_nat (fun seed ->
      let pool = Mk_engine.Pool.create ~oversubscribe:true ~num_domains:2 () in
      Fun.protect ~finally:(fun () -> Mk_engine.Pool.shutdown pool) @@ fun () ->
      export_bytes seed = export_bytes ~pool seed)

let test_trace_nonempty () =
  let trace, metrics = export_bytes 42 in
  check_bool "trace has events" true (String.length trace > 200);
  check_bool "metrics non-trivial" true (String.length metrics > 100)

(* ------------------------------------------------------------------ *)
(* Flight: bounded ring, ambient arming, dump shape *)

let test_flight_under_capacity () =
  let r = Flight.create ~capacity:8 ~label:"cell" ~seed:7 () in
  Flight.span r ~ts:0 ~dur:10 ~node:0 ~tid:0 ~cat:"phase" ~name:"setup" ();
  Flight.instant r ~ts:5 ~node:1 ~cat:"fault" ~name:"crash" ();
  Flight.count r ~ts:9 ~node:0 ~subsystem:"mpi" ~name:"straggler" 3;
  let s = Flight.snapshot r in
  check_int "recorded" 3 s.Flight.snap_recorded;
  check_int "kept" 3 (List.length s.Flight.snap_entries);
  check_int "dropped" 0 (Flight.dropped s);
  check_bool "seqs in append order" true
    (List.map fst s.Flight.snap_entries = [ 0; 1; 2 ]);
  check_bool "entries in append order" true
    (List.map (fun (_, e) -> e.Flight.e_name) s.Flight.snap_entries
    = [ "setup"; "crash"; "straggler" ])

let test_flight_ambient () =
  check_bool "starts unarmed" true (not (Flight.is_armed ()));
  (* Unarmed record_* calls must be silent no-ops. *)
  Flight.record_instant ~ts:0 ~node:0 ~cat:"c" ~name:"dropped" ();
  let outer = Flight.create ~capacity:4 ~label:"outer" ~seed:0 () in
  let inner = Flight.create ~capacity:4 ~label:"inner" ~seed:0 () in
  Flight.with_ring outer (fun () ->
      check_bool "armed inside" true (Flight.is_armed ());
      Flight.record_instant ~ts:1 ~node:0 ~cat:"c" ~name:"a" ();
      (* Nested arming shadows, then restores, the outer ring. *)
      Flight.with_ring inner (fun () ->
          Flight.record_instant ~ts:2 ~node:0 ~cat:"c" ~name:"b" ());
      Flight.record_instant ~ts:3 ~node:0 ~cat:"c" ~name:"d" ());
  check_bool "restored to unarmed" true (not (Flight.is_armed ()));
  check_int "outer saw its two events" 2 (Flight.recorded outer);
  check_int "inner saw one" 1 (Flight.recorded inner)

let test_flight_dump_shape () =
  let r = Flight.create ~capacity:4 ~label:"cell" ~seed:1 () in
  for i = 0 to 9 do
    Flight.instant r ~ts:i ~node:(i mod 2) ~cat:"c" ~name:(string_of_int i) ()
  done;
  let s = Flight.snapshot r in
  check_int "events exported" 4 (List.length (Flight.to_events s));
  match Flight.to_json ~cell_key:"k" ~reason:"why" s with
  | Mk_engine.Json.Obj fields -> (
      let str n =
        match List.assoc_opt n fields with
        | Some (Mk_engine.Json.String s) -> s
        | _ -> "?"
      in
      check_string "schema" "multikernel-flight/1" (str "schema");
      check_string "cell key" "k" (str "cell_key");
      check_string "reason" "why" (str "reason");
      match List.assoc_opt "trace" fields with
      | Some (Mk_engine.Json.Obj t) -> (
          match List.assoc_opt "traceEvents" t with
          | Some (Mk_engine.Json.List evs) ->
              check_bool "perfetto events present" true (List.length evs >= 4)
          | _ -> Alcotest.fail "traceEvents missing")
      | _ -> Alcotest.fail "trace document missing")
  | _ -> Alcotest.fail "dump is not an object"

let flight_wraparound =
  QCheck.Test.make
    ~name:"flight ring: last-N survive any overwrite pattern" ~count:200
    QCheck.(pair (int_range 1 16) (int_range 0 200))
    (fun (capacity, n) ->
      let r = Flight.create ~capacity ~label:"qc" ~seed:0 () in
      for i = 0 to n - 1 do
        Flight.instant r ~ts:i ~node:0 ~cat:"c" ~name:(string_of_int i) ()
      done;
      let s = Flight.snapshot r in
      let kept = min n capacity in
      s.Flight.snap_recorded = n
      && Flight.dropped s = n - kept
      && List.length s.Flight.snap_entries = kept
      && List.for_all2
           (fun j (seq, e) ->
             let expect = n - kept + j in
             seq = expect
             && e.Flight.e_ts = expect
             && e.Flight.e_name = string_of_int expect)
           (List.init kept Fun.id)
           s.Flight.snap_entries)

(* A quarantined cell's black box must be byte-identical between a
   sequential and an oversubscribed parallel supervised run — the
   ring only ever records DES-clock events from its own cell. *)

let with_temp_dir prefix f =
  let path = Filename.temp_file prefix "" in
  Sys.remove path;
  Sys.mkdir path 0o700;
  Fun.protect
    ~finally:(fun () ->
      Array.iter
        (fun e -> try Sys.remove (Filename.concat path e) with Sys_error _ -> ())
        (Sys.readdir path);
      try Sys.rmdir path with Sys_error _ -> ())
    (fun () -> f path)

let flight_dump_bytes ?pool seed =
  let cells =
    Mk_cluster.Experiment.compare_cells
      ~scenarios:[ Mk_cluster.Scenario.mckernel ]
      ~app:(app "hpcg") ~node_counts:[ 4; 8 ] ~runs:2 ~seed ()
  in
  let victim = seed mod List.length cells in
  let chaos ~cell ~attempt:_ =
    if cell = victim then failwith "qc: killed for the black box"
  in
  with_temp_dir "mkflightqc" @@ fun dir ->
  let s =
    Mk_cluster.Experiment.supervised_points ?pool ~chaos ~flight_dir:dir cells
  in
  Alcotest.(check int) "one quarantine" 1 s.Mk_cluster.Experiment.quarantined;
  let key = Mk_cluster.Experiment.cell_key (List.nth cells victim) in
  let ic = open_in_bin (Mk_cluster.Experiment.flight_path ~dir ~key) in
  Fun.protect
    ~finally:(fun () -> close_in_noerr ic)
    (fun () -> really_input_string ic (in_channel_length ic))

let flight_dump_identity =
  QCheck.Test.make ~name:"flight dump: -j 2 = sequential" ~count:4
    QCheck.small_nat (fun seed ->
      let pool = Mk_engine.Pool.create ~oversubscribe:true ~num_domains:2 () in
      Fun.protect ~finally:(fun () -> Mk_engine.Pool.shutdown pool) @@ fun () ->
      flight_dump_bytes seed = flight_dump_bytes ~pool seed)

(* ------------------------------------------------------------------ *)
(* Profile: bucket folding and the deterministic document *)

let sample ~epoch ~bound ~horizon ~events ~cross ~nulls ~stalls ~backlog =
  {
    Mk_engine.Shard.sample_epoch = epoch;
    sample_bound = bound;
    sample_horizon = horizon;
    sample_events = events;
    sample_cross = cross;
    sample_nulls = nulls;
    sample_stalls = stalls;
    sample_backlog = backlog;
  }

let test_profile_buckets () =
  let p = Profile.create ~bucket_ns:1000 ~shards:2 () in
  Profile.observe p
    (sample ~epoch:1 ~bound:100 ~horizon:399 ~events:10 ~cross:2 ~nulls:3
       ~stalls:1 ~backlog:5);
  Profile.observe p
    (sample ~epoch:2 ~bound:900 ~horizon:1199 ~events:4 ~cross:1 ~nulls:1
       ~stalls:0 ~backlog:2);
  Profile.observe p
    (sample ~epoch:3 ~bound:2100 ~horizon:2399 ~events:6 ~cross:0 ~nulls:2
       ~stalls:2 ~backlog:7);
  (match Profile.buckets p with
  | [ b0; b2 ] ->
      check_int "first bucket index" 0 b0.Profile.b_index;
      check_int "first bucket epochs" 2 b0.Profile.b_epochs;
      check_int "first bucket events" 14 b0.Profile.b_events;
      check_int "first bucket max backlog" 5 b0.Profile.b_max_backlog;
      check_int "second bucket index" 2 b2.Profile.b_index;
      check_int "second bucket start" 2000 b2.Profile.b_start;
      check_int "second bucket events" 6 b2.Profile.b_events
  | bs -> Alcotest.failf "expected 2 buckets, got %d" (List.length bs));
  let tt = Profile.totals p in
  check_int "total epochs" 3 tt.Profile.t_epochs;
  check_int "total events" 20 tt.Profile.t_events;
  check_int "lookahead from first sample" 300 tt.Profile.t_lookahead;
  check_int "bound span" 2000 (tt.Profile.t_last_bound - tt.Profile.t_first_bound);
  check_bool "null pct" true
    (abs_float (Profile.null_pct tt -. 100.0 *. 6.0 /. 9.0) < 1e-9);
  check_bool "stall pct" true
    (abs_float (Profile.stall_pct ~shards:2 tt -. 50.0) < 1e-9)

let test_profile_top () =
  let tt events =
    Profile.totals
      (let p = Profile.create ~shards:1 () in
       Profile.observe p
         (sample ~epoch:1 ~bound:0 ~horizon:0 ~events ~cross:0 ~nulls:0
            ~stalls:0 ~backlog:0);
       p)
  in
  let rows = [ ("b", tt 5); ("a", tt 9); ("c", tt 9) ] in
  check_bool "ranked by events, ties on label" true
    (List.map fst (Profile.top ~k:2 rows) = [ "a"; "c" ])

let profile_doc_bytes ?pool seed =
  Mk_engine.Json.to_string
    (Mk_cluster.Report.profile_json ~nodes:8 ~shards:2 ~seed
       (Mk_cluster.Experiment.des_profiles ?pool ~nodes:8 ~shards:2
          ~iterations:2 ~seed ()))

let profile_identity =
  QCheck.Test.make ~name:"profile document: -j 2 = sequential" ~count:3
    QCheck.small_nat (fun seed ->
      let pool = Mk_engine.Pool.create ~oversubscribe:true ~num_domains:2 () in
      Fun.protect ~finally:(fun () -> Mk_engine.Pool.shutdown pool) @@ fun () ->
      profile_doc_bytes seed = profile_doc_bytes ~pool seed)

let test_profile_doc_nonempty () =
  let doc = profile_doc_bytes 42 in
  check_bool "profiles carry epochs" true
    (String.length doc > 500
    &&
    match Mk_engine.Json.of_string doc with
    | Ok (Mk_engine.Json.Obj fields) -> List.mem_assoc "attribution" fields
    | _ -> false)

let qsuite tests = List.map QCheck_alcotest.to_alcotest tests

let () =
  Alcotest.run "mk_obs"
    [
      ( "key",
        [
          Alcotest.test_case "total order" `Quick test_key_order;
          Alcotest.test_case "labels" `Quick test_key_labels;
        ] );
      ( "metrics",
        [
          Alcotest.test_case "counters" `Quick test_metrics_counters;
          Alcotest.test_case "gauge & histogram" `Quick
            test_metrics_gauge_histogram;
          Alcotest.test_case "sorted bindings & absorb" `Quick
            test_metrics_sorted_and_absorb;
        ] );
      ( "trace",
        [
          Alcotest.test_case "(ts, seq) order" `Quick test_trace_order;
          Alcotest.test_case "chrome trace shape" `Quick test_trace_json_shape;
          Alcotest.test_case "perfetto round trip" `Quick
            test_perfetto_round_trip;
        ] );
      ("hook", [ Alcotest.test_case "ambient sink" `Quick test_hook_ambient ]);
      ( "attribution",
        [
          Alcotest.test_case "mckernel fixtures" `Quick
            test_attribution_mckernel;
          Alcotest.test_case "linux fixtures" `Quick test_attribution_linux;
          Alcotest.test_case "lulesh trace counts" `Quick
            test_lulesh_trace_counts;
        ] );
      ( "pool-stats",
        [
          Alcotest.test_case "counters sum to executed jobs" `Quick
            test_pool_stats_counters_sum;
        ] );
      ( "flight",
        [
          Alcotest.test_case "under capacity" `Quick test_flight_under_capacity;
          Alcotest.test_case "ambient arm/restore" `Quick test_flight_ambient;
          Alcotest.test_case "dump shape" `Quick test_flight_dump_shape;
        ]
        @ qsuite [ flight_wraparound; flight_dump_identity ] );
      ( "profile",
        [
          Alcotest.test_case "bucket folding" `Quick test_profile_buckets;
          Alcotest.test_case "top-k attribution" `Quick test_profile_top;
          Alcotest.test_case "document non-empty" `Quick
            test_profile_doc_nonempty;
        ]
        @ qsuite [ profile_identity ] );
      ( "determinism",
        Alcotest.test_case "exports non-empty" `Quick test_trace_nonempty
        :: qsuite [ trace_identity ] );
    ]
