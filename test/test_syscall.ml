(* Tests for the syscall layer: enumeration, classes, costs and the
   per-kernel disposition tables. *)

open Mk_syscall

let check_int = Alcotest.(check int)
let check_bool = Alcotest.(check bool)

let test_all_count () = check_int "count matches list" (List.length Sysno.all) Sysno.count

let test_all_unique () =
  let sorted = List.sort_uniq compare Sysno.all in
  check_int "no duplicates" (List.length Sysno.all) (List.length sorted)

let test_names_unique () =
  let names = List.map Sysno.to_string Sysno.all in
  check_int "unique names" (List.length names)
    (List.length (List.sort_uniq compare names))

let test_class_partition () =
  let classes =
    [ Sysno.Memory; Sysno.Process; Sysno.Scheduling; Sysno.Synchronisation;
      Sysno.Signals; Sysno.Files; Sysno.Networking; Sysno.Ipc; Sysno.Info ]
  in
  let total = List.fold_left (fun acc c -> acc + List.length (Sysno.of_class c)) 0 classes in
  check_int "classes partition the set" Sysno.count total

let test_class_examples () =
  check_bool "brk is memory" true (Sysno.cls Sysno.Brk = Sysno.Memory);
  check_bool "ioctl is files" true (Sysno.cls Sysno.Ioctl = Sysno.Files);
  check_bool "futex is sync" true (Sysno.cls Sysno.Futex = Sysno.Synchronisation);
  check_bool "sendmsg is net" true (Sysno.cls Sysno.Sendmsg = Sysno.Networking)

let test_costs_positive () =
  List.iter
    (fun s -> check_bool (Sysno.to_string s) true (Cost.local s > 0))
    Sysno.all

let test_cost_ordering () =
  check_bool "getpid cheap" true (Cost.local Sysno.Getpid < Cost.local Sysno.Open);
  check_bool "fork expensive" true (Cost.local Sysno.Fork > Cost.local Sysno.Read);
  check_bool "execve most expensive process op" true
    (Cost.local Sysno.Execve > Cost.local Sysno.Fork)

let test_linux_all_local () =
  List.iter
    (fun s ->
      check_bool (Sysno.to_string s) true (Disposition.linux s = Disposition.Local))
    Sysno.all

let count_disposition table pred =
  List.length (List.filter (fun s -> pred (table s)) Sysno.all)

let test_mckernel_memory_local () =
  (* "it provides its own memory management" — every memory call is
     served locally (some with deviations). *)
  List.iter
    (fun s ->
      check_bool (Sysno.to_string s) true
        (Disposition.is_local (Disposition.mckernel s)))
    (Sysno.of_class Sysno.Memory)

let test_mckernel_files_offloaded () =
  List.iter
    (fun s ->
      check_bool (Sysno.to_string s) true (Disposition.mckernel s = Disposition.Offload))
    (Sysno.of_class Sysno.Files)

let test_mckernel_small_local_set () =
  (* "it implements only a small set of performance sensitive system
     calls.  The rest are offloaded" — the local set must be a
     minority. *)
  let local = count_disposition Disposition.mckernel Disposition.is_local in
  let offload =
    count_disposition Disposition.mckernel (fun d -> d = Disposition.Offload)
  in
  check_bool "offloads outnumber locals" true (offload > local)

let test_mos_fork_partial () =
  match Disposition.mos Sysno.Fork with
  | Disposition.Partial _ -> ()
  | d -> Alcotest.failf "fork should be partial on mOS, got %s" (Disposition.to_string d)

let test_mos_prctl_local () =
  (* mOS "can directly reuse Linux' ptrace() implementation"
     (Section II-D4): prctl is clean-local, ptrace nearly. *)
  check_bool "prctl local" true (Disposition.mos Sysno.Prctl = Disposition.Local)

let test_mckernel_ptrace_partial () =
  match Disposition.mckernel Sysno.Ptrace with
  | Disposition.Partial _ -> ()
  | d ->
      Alcotest.failf "ptrace should be partial on McKernel, got %s"
        (Disposition.to_string d)

let test_both_lwk_move_pages_partial () =
  List.iter
    (fun table ->
      match table Sysno.Move_pages with
      | Disposition.Partial _ -> ()
      | d -> Alcotest.failf "move_pages should be partial, got %s" (Disposition.to_string d))
    [ Disposition.mckernel; Disposition.mos ]

let test_sched_yield_local_on_lwks () =
  check_bool "mckernel" true (Disposition.mckernel Sysno.Sched_yield = Disposition.Local);
  check_bool "mos" true (Disposition.mos Sysno.Sched_yield = Disposition.Local)

let no_unsupported =
  QCheck.Test.make ~name:"no syscall is flat-out unsupported" ~count:50
    QCheck.(oneofl Sysno.all)
    (fun s ->
      Disposition.mckernel s <> Disposition.Unsupported
      && Disposition.mos s <> Disposition.Unsupported)

let qsuite tests = List.map QCheck_alcotest.to_alcotest tests

let () =
  Alcotest.run "mk_syscall"
    [
      ( "sysno",
        [
          Alcotest.test_case "count" `Quick test_all_count;
          Alcotest.test_case "unique" `Quick test_all_unique;
          Alcotest.test_case "unique names" `Quick test_names_unique;
          Alcotest.test_case "class partition" `Quick test_class_partition;
          Alcotest.test_case "class examples" `Quick test_class_examples;
        ] );
      ( "cost",
        [
          Alcotest.test_case "positive" `Quick test_costs_positive;
          Alcotest.test_case "ordering" `Quick test_cost_ordering;
        ] );
      ( "disposition",
        Alcotest.test_case "linux all local" `Quick test_linux_all_local
        :: Alcotest.test_case "mckernel memory local" `Quick
             test_mckernel_memory_local
        :: Alcotest.test_case "mckernel files offloaded" `Quick
             test_mckernel_files_offloaded
        :: Alcotest.test_case "mckernel small local set" `Quick
             test_mckernel_small_local_set
        :: Alcotest.test_case "mos fork partial" `Quick test_mos_fork_partial
        :: Alcotest.test_case "mos prctl local" `Quick test_mos_prctl_local
        :: Alcotest.test_case "mckernel ptrace partial" `Quick
             test_mckernel_ptrace_partial
        :: Alcotest.test_case "move_pages partial" `Quick
             test_both_lwk_move_pages_partial
        :: Alcotest.test_case "sched_yield local" `Quick
             test_sched_yield_local_on_lwks
        :: qsuite [ no_unsupported ] );
    ]
