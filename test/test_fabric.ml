(* Tests for the interconnect model: fat-tree topology, NIC control
   path and the alpha-beta message cost. *)

open Mk_fabric

let check_int = Alcotest.(check int)
let check_bool = Alcotest.(check bool)

let test_topology_hops () =
  let t = Topology.make ~nodes:256 () in
  check_int "self" 0 (Topology.hops t ~src:5 ~dst:5);
  check_int "same edge" 1 (Topology.hops t ~src:0 ~dst:1);
  (* 48-port edges -> 24 nodes per edge switch. *)
  check_int "cross edge" 3 (Topology.hops t ~src:0 ~dst:200)

let test_topology_same_edge () =
  let t = Topology.make ~nodes:100 () in
  check_bool "0 and 23 share" true (Topology.same_edge t 0 23);
  check_bool "0 and 24 do not" false (Topology.same_edge t 0 24)

let test_nic_eager_no_syscalls () =
  let nic = Nic.make () in
  Alcotest.(check (list reject)) "eager message is pure user space" []
    (List.map (fun _ -> ()) (Nic.control_syscalls nic ~bytes:4096));
  check_int "small list" 0 (List.length (Nic.control_syscalls nic ~bytes:4096))

let test_nic_rendezvous_syscalls () =
  let nic = Nic.make () in
  let controls = Nic.control_syscalls nic ~bytes:(256 * 1024) in
  check_int "two kernel crossings" 2 (List.length controls);
  check_bool "registration ioctl present" true
    (List.mem Mk_syscall.Sysno.Ioctl controls)

let test_nic_threshold_boundary () =
  let nic = Nic.make ~eager_threshold:10_000 () in
  check_int "at threshold eager" 0 (List.length (Nic.control_syscalls nic ~bytes:10_000));
  check_int "above threshold rendezvous" 2
    (List.length (Nic.control_syscalls nic ~bytes:10_001))

let test_wire_time_monotone_in_size () =
  let f = Fabric.make ~nodes:64 () in
  let small = Fabric.wire_time f ~src:0 ~dst:30 ~bytes:1024 in
  let big = Fabric.wire_time f ~src:0 ~dst:30 ~bytes:(1024 * 1024) in
  check_bool "bigger slower" true (big > small)

let test_wire_time_hops_matter () =
  let f = Fabric.make ~nodes:256 () in
  let near = Fabric.wire_time f ~src:0 ~dst:1 ~bytes:8 in
  let far = Fabric.wire_time f ~src:0 ~dst:200 ~bytes:8 in
  check_bool "spine route slower" true (far > near);
  check_int "exactly two extra hops" (2 * Fabric.per_hop) (far - near)

let test_wire_time_self_zero () =
  let f = Fabric.make ~nodes:8 () in
  check_int "self message free" 0 (Fabric.wire_time f ~src:3 ~dst:3 ~bytes:4096)

let test_message_packs_both () =
  let f = Fabric.make ~nodes:8 () in
  let wire, controls = Fabric.message f ~src:0 ~dst:1 ~bytes:(1024 * 1024) in
  check_bool "wire positive" true (wire > 0);
  check_int "controls for rendezvous" 2 (List.length controls);
  let _, none = Fabric.message f ~src:2 ~dst:2 ~bytes:(1024 * 1024) in
  check_int "no controls on self" 0 (List.length none)

let test_latency_magnitude () =
  (* An 8-byte nearest-neighbour MPI message is ~1 microsecond on
     Omni-Path. *)
  let f = Fabric.make ~nodes:2 () in
  let t = Fabric.wire_time f ~src:0 ~dst:1 ~bytes:8 in
  check_bool "about a microsecond" true (t > 1_000 && t < 3_000)

let wire_time_triangleish =
  QCheck.Test.make ~name:"wire time is symmetric" ~count:200
    QCheck.(pair (int_range 0 255) (int_range 0 255))
    (fun (a, b) ->
      let f = Fabric.make ~nodes:256 () in
      Fabric.wire_time f ~src:a ~dst:b ~bytes:512
      = Fabric.wire_time f ~src:b ~dst:a ~bytes:512)

let qsuite tests = List.map QCheck_alcotest.to_alcotest tests

let () =
  Alcotest.run "mk_fabric"
    [
      ( "topology",
        [
          Alcotest.test_case "hops" `Quick test_topology_hops;
          Alcotest.test_case "same edge" `Quick test_topology_same_edge;
        ] );
      ( "nic",
        [
          Alcotest.test_case "eager pure user space" `Quick test_nic_eager_no_syscalls;
          Alcotest.test_case "rendezvous syscalls" `Quick test_nic_rendezvous_syscalls;
          Alcotest.test_case "threshold boundary" `Quick test_nic_threshold_boundary;
        ] );
      ( "fabric",
        Alcotest.test_case "monotone in size" `Quick test_wire_time_monotone_in_size
        :: Alcotest.test_case "hops matter" `Quick test_wire_time_hops_matter
        :: Alcotest.test_case "self zero" `Quick test_wire_time_self_zero
        :: Alcotest.test_case "message packs both" `Quick test_message_packs_both
        :: Alcotest.test_case "latency magnitude" `Quick test_latency_magnitude
        :: qsuite [ wire_time_triangleish ] );
    ]
