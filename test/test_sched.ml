(* Tests for the schedulers and the NUMA-aware binding planner. *)

let check_int = Alcotest.(check int)
let check_bool = Alcotest.(check bool)

let mk_task tid = Mk_proc.Task.make ~tid ~pid:tid ~name:(string_of_int tid) ~affinity:[ 0 ]

(* ------------------------------------------------------------------ *)
(* CFS *)

let test_cfs_fifo_when_fresh () =
  let s = Mk_sched.Cfs.create () in
  Mk_sched.Cfs.enqueue s (mk_task 1);
  Mk_sched.Cfs.enqueue s (mk_task 2);
  check_int "queued" 2 (Mk_sched.Cfs.queued s);
  match (Mk_sched.Cfs.pick s, Mk_sched.Cfs.pick s) with
  | Some a, Some b ->
      check_int "first in first out on equal vruntime" 1 a.Mk_proc.Task.tid;
      check_int "second" 2 b.Mk_proc.Task.tid
  | _ -> Alcotest.fail "picks failed"

let test_cfs_fairness () =
  (* A task that ran longer yields the CPU to one that ran less. *)
  let s = Mk_sched.Cfs.create () in
  let hog = mk_task 1 and light = mk_task 2 in
  Mk_sched.Cfs.enqueue s hog;
  (match Mk_sched.Cfs.pick s with
  | Some t -> Mk_sched.Cfs.requeue s t ~ran:1_000_000
  | None -> Alcotest.fail "pick");
  Mk_sched.Cfs.enqueue s light;
  (* light joins at min_vruntime which is below hog's accumulated. *)
  match Mk_sched.Cfs.pick s with
  | Some t -> check_int "light preferred" 2 t.Mk_proc.Task.tid
  | None -> Alcotest.fail "pick"

let test_cfs_timeslice_shrinks () =
  let s = Mk_sched.Cfs.create () in
  let one = Option.get (Mk_sched.Cfs.timeslice s ~runnable:1) in
  let many = Option.get (Mk_sched.Cfs.timeslice s ~runnable:16) in
  check_bool "slice shrinks with load" true (many <= one);
  check_bool "floored at min granularity" true (many >= 6 * Mk_engine.Units.ms)

let test_cfs_vruntime_accumulates () =
  let s = Mk_sched.Cfs.create () in
  let t = mk_task 1 in
  Mk_sched.Cfs.enqueue s t;
  ignore (Mk_sched.Cfs.pick s);
  Mk_sched.Cfs.requeue s t ~ran:500;
  check_int "accumulated" 500 (Mk_sched.Cfs.vruntime s t)

(* ------------------------------------------------------------------ *)
(* LWK round-robin *)

let test_lwk_fifo () =
  let s = Mk_sched.Lwk_rr.create () in
  List.iter (fun i -> Mk_sched.Lwk_rr.enqueue s (mk_task i)) [ 1; 2; 3 ];
  let order =
    List.init 3 (fun _ -> (Option.get (Mk_sched.Lwk_rr.pick s)).Mk_proc.Task.tid)
  in
  Alcotest.(check (list int)) "fifo" [ 1; 2; 3 ] order

let test_lwk_cooperative () =
  let s = Mk_sched.Lwk_rr.create () in
  check_bool "no timeslice" true (Mk_sched.Lwk_rr.timeslice s ~runnable:8 = None)

let test_lwk_time_sharing () =
  let s = Mk_sched.Lwk_rr.create_time_sharing ~quantum:(10 * Mk_engine.Units.ms) in
  check_bool "quantum present" true
    (Mk_sched.Lwk_rr.timeslice s ~runnable:2 = Some (10 * Mk_engine.Units.ms))

let test_switch_costs_ordering () =
  check_bool "lwk switch cheaper than cfs" true
    (Mk_sched.Lwk_rr.context_switch_cost < Mk_sched.Cfs.context_switch_cost)

(* ------------------------------------------------------------------ *)
(* Binding *)

let topo = Mk_hw.Knl.topology Mk_hw.Knl.Snc4_flat

let test_partition_cores () =
  let os, app = Mk_sched.Binding.partition_cores ~topo ~os_cores:4 in
  Alcotest.(check (list int)) "os cores are the first four" [ 0; 1; 2; 3 ] os;
  check_int "app cores" 64 (List.length app);
  check_bool "app excludes os" true (List.for_all (fun c -> not (List.mem c os)) app)

let test_block_64_ranks () =
  let plan = Mk_sched.Binding.block ~topo ~os_cores:4 ~ranks:64 ~threads_per_rank:1 in
  check_int "64 rank bindings" 64 (Array.length plan.Mk_sched.Binding.rank_cpus);
  (* Each rank gets exactly one cpu and no two ranks share one. *)
  let all = Array.to_list plan.Mk_sched.Binding.rank_cpus |> List.concat in
  check_int "one cpu per rank" 64 (List.length all);
  check_int "all distinct" 64 (List.length (List.sort_uniq compare all))

let test_block_hyperthreads () =
  (* 64 ranks x 2 threads on 64 cores: threads fall back to the
     sibling hardware thread of the rank's core. *)
  let plan = Mk_sched.Binding.block ~topo ~os_cores:4 ~ranks:64 ~threads_per_rank:2 in
  Array.iter
    (fun cpus ->
      check_int "two cpus" 2 (List.length cpus);
      match cpus with
      | [ a; b ] ->
          check_int "same physical core"
            (Mk_hw.Topology.core_of_cpu topo a)
            (Mk_hw.Topology.core_of_cpu topo b)
      | _ -> Alcotest.fail "expected two cpus")
    plan.Mk_sched.Binding.rank_cpus

let test_block_overflow_rejected () =
  check_bool "too many threads" true
    (try
       ignore (Mk_sched.Binding.block ~topo ~os_cores:4 ~ranks:64 ~threads_per_rank:8);
       false
     with Invalid_argument _ -> true)

let test_home_domains_spread () =
  let plan = Mk_sched.Binding.block ~topo ~os_cores:4 ~ranks:64 ~threads_per_rank:1 in
  let per = Mk_sched.Binding.ranks_per_domain ~topo plan in
  (* Quadrant 0 lost 4 cores to the OS: 13/17/17/17. *)
  Alcotest.(check (list (pair int int)))
    "ranks per domain"
    [ (0, 13); (1, 17); (2, 17); (3, 17) ]
    per

let test_home_domain_of_rank () =
  let plan = Mk_sched.Binding.block ~topo ~os_cores:4 ~ranks:64 ~threads_per_rank:1 in
  check_int "rank 0 in quadrant 0" 0 (Mk_sched.Binding.home_domain ~topo plan ~rank:0);
  check_int "rank 63 in quadrant 3" 3 (Mk_sched.Binding.home_domain ~topo plan ~rank:63)

let binding_respects_capacity =
  QCheck.Test.make ~name:"binding never exceeds node capacity" ~count:100
    QCheck.(pair (int_range 1 64) (int_range 1 4))
    (fun (ranks, threads) ->
      match Mk_sched.Binding.block ~topo ~os_cores:4 ~ranks ~threads_per_rank:threads with
      | plan ->
          let all = Array.to_list plan.Mk_sched.Binding.rank_cpus |> List.concat in
          List.length all = List.length (List.sort_uniq compare all)
      | exception Invalid_argument _ -> ranks * threads > 64 * 4)

let qsuite tests = List.map QCheck_alcotest.to_alcotest tests

let () =
  Alcotest.run "mk_sched"
    [
      ( "cfs",
        [
          Alcotest.test_case "fifo when fresh" `Quick test_cfs_fifo_when_fresh;
          Alcotest.test_case "fairness" `Quick test_cfs_fairness;
          Alcotest.test_case "timeslice shrinks" `Quick test_cfs_timeslice_shrinks;
          Alcotest.test_case "vruntime accumulates" `Quick
            test_cfs_vruntime_accumulates;
        ] );
      ( "lwk_rr",
        [
          Alcotest.test_case "fifo" `Quick test_lwk_fifo;
          Alcotest.test_case "cooperative" `Quick test_lwk_cooperative;
          Alcotest.test_case "time sharing" `Quick test_lwk_time_sharing;
          Alcotest.test_case "switch costs" `Quick test_switch_costs_ordering;
        ] );
      ( "binding",
        Alcotest.test_case "partition" `Quick test_partition_cores
        :: Alcotest.test_case "block 64" `Quick test_block_64_ranks
        :: Alcotest.test_case "hyperthreads" `Quick test_block_hyperthreads
        :: Alcotest.test_case "overflow" `Quick test_block_overflow_rejected
        :: Alcotest.test_case "domain spread" `Quick test_home_domains_spread
        :: Alcotest.test_case "home domain" `Quick test_home_domain_of_rank
        :: qsuite [ binding_respects_capacity ] );
    ]
