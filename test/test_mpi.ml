(* Tests for the MPI runtime: communicators, shared-memory transport,
   collectives over node clocks and halo exchanges. *)

open Mk_mpi

let check_int = Alcotest.(check int)
let check_bool = Alcotest.(check bool)

let test_comm_geometry () =
  let c = Comm.make ~nodes:4 ~ranks_per_node:64 in
  check_int "size" 256 (Comm.size c);
  check_int "node of 130" 2 (Comm.node_of_rank c 130);
  check_int "local of 130" 2 (Comm.local_of_rank c 130);
  check_int "roundtrip" 130 (Comm.rank_of c ~node:2 ~local:2);
  check_bool "same node" true (Comm.same_node c 128 130);
  check_bool "different node" false (Comm.same_node c 64 130)

let test_comm_bad_rank () =
  let c = Comm.make ~nodes:2 ~ranks_per_node:4 in
  check_bool "out of range rejected" true
    (try
       ignore (Comm.node_of_rank c 8);
       false
     with Invalid_argument _ -> true)

let test_shm_message_time () =
  check_bool "latency floor" true (Shm.message_time ~bytes:0 >= Shm.latency);
  check_bool "monotone" true
    (Shm.message_time ~bytes:(1024 * 1024) > Shm.message_time ~bytes:1024)

let test_shm_reduce_steps () =
  check_int "1 rank" 0 (Shm.reduce_steps ~ranks:1);
  check_int "2 ranks" 1 (Shm.reduce_steps ~ranks:2);
  check_int "64 ranks" 6 (Shm.reduce_steps ~ranks:64);
  check_int "65 ranks" 7 (Shm.reduce_steps ~ranks:65)

let mk_env ?(nodes = 16) () =
  {
    Collective.fabric = Mk_fabric.Fabric.make ~nodes ();
    syscall_cost = (fun _ -> 0);
    intra_ranks = 64;
  }

let test_allreduce_synchronises () =
  let env = mk_env () in
  let clocks = Array.init 16 (fun i -> i * 1000) in
  Collective.allreduce env ~clocks ~bytes:8;
  (* After an allreduce everyone has at least the straggler's time
     plus communication. *)
  let mx = Array.fold_left max 0 clocks in
  let mn = Array.fold_left min max_int clocks in
  check_bool "everyone past the straggler" true (mn >= 15_000);
  (* Tree broadcast skew is bounded by depth * edge cost. *)
  check_bool "bounded skew" true (mx - mn < 100_000)

let test_allreduce_cost_grows_with_scale () =
  let cost nodes =
    let env = mk_env ~nodes () in
    let clocks = Array.make nodes 0 in
    Collective.allreduce env ~clocks ~bytes:8;
    Array.fold_left max 0 clocks
  in
  check_bool "1024 dearer than 16" true (cost 1024 > cost 16);
  check_bool "log-ish growth" true (cost 1024 < 4 * cost 16)

let test_allreduce_straggler_gates_everyone () =
  let env = mk_env () in
  let clocks = Array.make 16 0 in
  clocks.(7) <- 1_000_000;
  Collective.allreduce env ~clocks ~bytes:8;
  Array.iteri
    (fun i c -> check_bool (Printf.sprintf "node %d waited" i) true (c >= 1_000_000))
    clocks

let test_allreduce_single_node () =
  let env = mk_env ~nodes:1 () in
  let clocks = [| 500 |] in
  Collective.allreduce env ~clocks ~bytes:8;
  (* Only the intra-node reduction applies. *)
  check_int "intra cost only" (500 + Shm.intra_allreduce ~ranks:64 ~bytes:8) clocks.(0)

let test_allreduce_syscall_cost_charged () =
  (* With a fat payload the edges charge the sender's control calls. *)
  let base = mk_env () in
  let env = { base with Collective.syscall_cost = (fun _ -> 10_000) } in
  let free = mk_env () in
  let c1 = Array.make 16 0 and c2 = Array.make 16 0 in
  Collective.allreduce env ~clocks:c1 ~bytes:(256 * 1024);
  Collective.allreduce free ~clocks:c2 ~bytes:(256 * 1024);
  check_bool "syscalls on the critical path" true
    (Array.fold_left max 0 c1 > Array.fold_left max 0 c2)

let test_barrier_is_small_allreduce () =
  let env = mk_env () in
  let a = Array.make 16 0 and b = Array.make 16 0 in
  Collective.barrier env ~clocks:a;
  Collective.allreduce env ~clocks:b ~bytes:8;
  Alcotest.(check (array int)) "barrier = 8-byte allreduce" b a

let test_synchronise () =
  let clocks = [| 5; 9; 1 |] in
  Collective.synchronise ~clocks;
  Alcotest.(check (array int)) "all at max" [| 9; 9; 9 |] clocks

let test_neighbor_offsets () =
  let offsets = P2p.neighbor_offsets ~nodes:64 ~neighbors:6 in
  check_int "six offsets" 6 (List.length offsets);
  (* 3D decomposition of 64 nodes: side 4. *)
  Alcotest.(check (list int)) "stencil offsets" [ 1; -1; 4; -4; 16; -16 ] offsets

let test_halo_waits_for_neighbors () =
  let env = mk_env () in
  let clocks = Array.make 16 0 in
  clocks.(1) <- 500_000;
  P2p.halo env ~clocks ~bytes:1024 ~neighbors:2;
  (* Node 0 talks to 1 (offset +-1): it must wait for node 1. *)
  check_bool "node 0 waited for 1" true (clocks.(0) > 500_000);
  (* A node far from the straggler in the ring is unaffected. *)
  check_bool "node 8 oblivious" true (clocks.(8) < 100_000)

let test_halo_single_node_noop () =
  let env = mk_env ~nodes:1 () in
  let clocks = [| 42 |] in
  P2p.halo env ~clocks ~bytes:1024 ~neighbors:6;
  check_int "unchanged" 42 clocks.(0)


(* ------------------------------------------------------------------ *)
(* Event-driven intra-node collective *)

let test_intranode_single_rank () =
  let r = Intranode.allreduce ~ranks:1 ~bytes:8 ~wait:Intranode.Spin () in
  check_int "no messages" 0 r.Intranode.messages;
  check_int "instant" 0 r.Intranode.completion

let test_intranode_message_count () =
  (* A binomial reduce + broadcast over R ranks moves 2(R-1) messages. *)
  List.iter
    (fun ranks ->
      let r = Intranode.allreduce ~ranks ~bytes:8 ~wait:Intranode.Spin () in
      check_int (Printf.sprintf "%d ranks" ranks) (2 * (ranks - 1)) r.Intranode.messages)
    [ 2; 3; 8; 17; 64 ]

let test_intranode_log_depth () =
  (* Completion grows with the tree depth, not the rank count. *)
  let time ranks =
    (Intranode.allreduce ~ranks ~bytes:8 ~wait:Intranode.Spin ()).Intranode.completion
  in
  let t2 = time 2 and t64 = time 64 in
  check_bool "64 ranks only ~6x deeper" true (t64 <= 6 * t2 + 1)

let test_intranode_futex_dearer () =
  let spin = Intranode.allreduce ~ranks:64 ~bytes:8 ~wait:Intranode.Spin () in
  let futex =
    Intranode.allreduce ~ranks:64 ~bytes:8 ~wait:(Intranode.Futex_wake 4_000) ()
  in
  check_bool "futex wakes cost" true
    (futex.Intranode.completion > spin.Intranode.completion);
  check_int "every message wakes someone" futex.Intranode.messages
    futex.Intranode.wakeups;
  check_int "spin never wakes" 0 spin.Intranode.wakeups

let test_intranode_straggler_gates () =
  let skew rank = if rank = 33 then 1_000_000 else 0 in
  let r = Intranode.allreduce ~ranks:64 ~bytes:8 ~wait:Intranode.Spin ~skew () in
  check_bool "held by the straggler" true (r.Intranode.completion > 1_000_000)

let test_intranode_matches_analytic_shape () =
  (* The DES and the analytic intra-node cost agree within a small
     factor (the analytic model charges 2 log2 R full steps). *)
  let des =
    (Intranode.allreduce ~ranks:64 ~bytes:8 ~wait:Intranode.Spin ()).Intranode.completion
  in
  let analytic = Shm.intra_allreduce ~ranks:64 ~bytes:8 in
  check_bool "same order of magnitude" true (analytic / 3 < des && des < analytic * 3)

let test_intranode_sweep_monotone () =
  let sweep =
    Intranode.latency_sweep ~ranks:16 ~wait:Intranode.Spin [ 8; 1024; 65536; 1048576 ]
  in
  let rec monotone = function
    | (_, a) :: ((_, b) :: _ as rest) -> a <= b && monotone rest
    | _ -> true
  in
  check_bool "latency grows with size" true (monotone sweep)

let allreduce_preserves_order =
  QCheck.Test.make ~name:"allreduce never rewinds a clock" ~count:50
    QCheck.(list_of_size (Gen.return 16) (int_range 0 1_000_000))
    (fun starts ->
      let clocks = Array.of_list starts in
      let before = Array.copy clocks in
      let env = mk_env () in
      Collective.allreduce env ~clocks ~bytes:8;
      Array.for_all2 (fun a b -> b >= a) before clocks)

let qsuite tests = List.map QCheck_alcotest.to_alcotest tests

let () =
  Alcotest.run "mk_mpi"
    [
      ( "comm",
        [
          Alcotest.test_case "geometry" `Quick test_comm_geometry;
          Alcotest.test_case "bad rank" `Quick test_comm_bad_rank;
        ] );
      ( "shm",
        [
          Alcotest.test_case "message time" `Quick test_shm_message_time;
          Alcotest.test_case "reduce steps" `Quick test_shm_reduce_steps;
        ] );
      ( "collective",
        Alcotest.test_case "synchronises" `Quick test_allreduce_synchronises
        :: Alcotest.test_case "cost grows with scale" `Quick
             test_allreduce_cost_grows_with_scale
        :: Alcotest.test_case "straggler gates" `Quick
             test_allreduce_straggler_gates_everyone
        :: Alcotest.test_case "single node" `Quick test_allreduce_single_node
        :: Alcotest.test_case "syscalls charged" `Quick
             test_allreduce_syscall_cost_charged
        :: Alcotest.test_case "barrier" `Quick test_barrier_is_small_allreduce
        :: Alcotest.test_case "synchronise" `Quick test_synchronise
        :: qsuite [ allreduce_preserves_order ] );
      ( "intranode",
        [
          Alcotest.test_case "single rank" `Quick test_intranode_single_rank;
          Alcotest.test_case "message count" `Quick test_intranode_message_count;
          Alcotest.test_case "log depth" `Quick test_intranode_log_depth;
          Alcotest.test_case "futex dearer" `Quick test_intranode_futex_dearer;
          Alcotest.test_case "straggler gates" `Quick test_intranode_straggler_gates;
          Alcotest.test_case "matches analytic" `Quick
            test_intranode_matches_analytic_shape;
          Alcotest.test_case "sweep monotone" `Quick test_intranode_sweep_monotone;
        ] );
      ( "p2p",
        [
          Alcotest.test_case "neighbor offsets" `Quick test_neighbor_offsets;
          Alcotest.test_case "waits for neighbors" `Quick test_halo_waits_for_neighbors;
          Alcotest.test_case "single node noop" `Quick test_halo_single_node_noop;
        ] );
    ]
