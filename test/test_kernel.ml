(* Tests for the OS models: boot/partitioning, syscall dispatch,
   kernel-specific memory behaviour and the node workload interpreter. *)

open Mk_kernel

let check_int = Alcotest.(check int)
let check_bool = Alcotest.(check bool)

let gib = 1024 * 1024 * 1024
let mib = 1024 * 1024

(* ------------------------------------------------------------------ *)
(* IHK partitioning *)

let topo = Mk_hw.Knl.topology Mk_hw.Knl.Snc4_flat

let test_ihk_reserves_linux_memory () =
  let phys = Ihk.partition ~topo Ihk.default_boot in
  (* 96 GiB DDR minus 4 GiB for Linux. *)
  check_int "ddr after reservation" (92 * gib)
    (Mk_mem.Phys.free_bytes_of_kind phys Mk_hw.Memory_kind.Ddr4);
  check_int "mcdram untouched" (16 * gib)
    (Mk_mem.Phys.free_bytes_of_kind phys Mk_hw.Memory_kind.Mcdram)

let test_ihk_late_fragments () =
  let late = Ihk.partition ~topo Ihk.default_late in
  let boot = Ihk.partition ~topo Ihk.default_boot in
  check_bool "late grab caps contiguity" true
    (Mk_mem.Phys.largest_free late ~domain:4 < Mk_mem.Phys.largest_free boot ~domain:4)

(* ------------------------------------------------------------------ *)
(* OS construction *)

let test_kernels_partition_cores () =
  List.iter
    (fun os ->
      check_int "4 os cores" 4 (List.length os.Os.os_cores);
      check_int "64 app cores" 64 (List.length os.Os.app_cores))
    [ Linux_os.create (); Mckernel.create (); Mos.create () ]

let test_noise_isolation_ordering () =
  let o os = Mk_noise.Profile.total_overhead os.Os.app_noise in
  let linux = Linux_os.create () in
  let mck = Mckernel.create () in
  let mos = Mos.create () in
  check_bool "mckernel silent" true (o mck = 0.0);
  check_bool "mos nearly silent" true (o mos > 0.0 && o mos < o linux)

let test_mos_better_contiguity_than_mckernel () =
  (* Boot-time grab vs late IHK reservation (Section II-D5). *)
  let mck = Mckernel.create () in
  let mos = Mos.create () in
  check_bool "mos wins on 1G availability" true
    (Os.largest_free_block mos ~kind:Mk_hw.Memory_kind.Mcdram
    > Os.largest_free_block mck ~kind:Mk_hw.Memory_kind.Mcdram)

let test_syscall_dispatch_linux_local () =
  let os = Linux_os.create () in
  match Os.syscall_time os ~core:10 Mk_syscall.Sysno.Open with
  | Ok t -> check_int "linux local cost" (Mk_syscall.Cost.local Mk_syscall.Sysno.Open) t
  | Error `Enosys -> Alcotest.fail "linux must serve open"

let test_syscall_dispatch_offload_dearer () =
  let linux = Linux_os.create () in
  let mck = Mckernel.create () in
  let t_linux =
    match Os.syscall_time linux ~core:10 Mk_syscall.Sysno.Open with
    | Ok t -> t
    | Error `Enosys -> Alcotest.fail "open"
  in
  let t_mck =
    match Os.syscall_time mck ~core:10 Mk_syscall.Sysno.Open with
    | Ok t -> t
    | Error `Enosys -> Alcotest.fail "open"
  in
  check_bool "offloaded open dearer than native" true (t_mck > t_linux)

let test_syscall_local_lwk_leaner () =
  (* A locally-served call is cheaper on the LWK (lean code paths). *)
  let linux = Linux_os.create () in
  let mck = Mckernel.create () in
  let t sys os =
    match Os.syscall_time os ~core:10 sys with
    | Ok t -> t
    | Error `Enosys -> Alcotest.fail "syscall"
  in
  check_bool "futex leaner on lwk" true
    (t Mk_syscall.Sysno.Futex mck < t Mk_syscall.Sysno.Futex linux)

let test_disable_sched_yield () =
  let os =
    Mckernel.create
      ~options:{ Os.default_options with Os.disable_sched_yield = true }
      ()
  in
  match Os.syscall_time os ~core:10 Mk_syscall.Sysno.Sched_yield with
  | Ok t -> check_bool "hijacked yield stays in user space" true (t < 100)
  | Error `Enosys -> Alcotest.fail "yield"

(* ------------------------------------------------------------------ *)
(* Node: boot and interpreter *)

let boot_node os = Node.boot ~os ~ranks:8 ~threads_per_rank:2 ~seed:11

let test_node_boot_processes () =
  let node = boot_node (Mckernel.create ()) in
  check_int "eight ranks" 8 (Node.ranks node);
  (* McKernel pairs every process with a proxy. *)
  for rank = 0 to 7 do
    let st = Node.rank_state node rank in
    check_bool "proxy attached" true (st.Node.process.Mk_proc.Process.proxy <> None)
  done

let test_node_boot_no_proxy_elsewhere () =
  List.iter
    (fun os ->
      let node = boot_node os in
      let st = Node.rank_state node 0 in
      check_bool "no proxy" true (st.Node.process.Mk_proc.Process.proxy = None))
    [ Linux_os.create (); Mos.create () ]

let test_run_compute () =
  let node = boot_node (Mckernel.create ()) in
  let t = Node.run_ops node ~rank:0 [ Workload.Compute 1_000_000 ] in
  (* McKernel is noise-free: exactly the requested time. *)
  check_int "exact on silent kernel" 1_000_000 t

let test_run_compute_linux_inflated () =
  let node = boot_node (Linux_os.create ~nohz_full:false ()) in
  let dur = 100 * Mk_engine.Units.ms in
  let t = Node.run_ops node ~rank:0 [ Workload.Compute dur ] in
  check_bool "noise inflates" true (t > dur)

let test_run_brk_and_touch () =
  let node = boot_node (Mckernel.create ()) in
  let t =
    Node.run_ops node ~rank:0
      [ Workload.Brk (8 * mib); Workload.Touch_heap; Workload.Brk 0 ]
  in
  check_bool "time charged" true (t > 0);
  let st = Mk_mem.Address_space.stats (Node.address_space node ~rank:0) in
  check_int "grow recorded" 1 st.Mk_mem.Address_space.brk_grows;
  check_int "query recorded" 1 st.Mk_mem.Address_space.brk_queries

let test_run_yield_hijack () =
  let plain = boot_node (Mckernel.create ()) in
  let hijacked =
    boot_node
      (Mckernel.create
         ~options:{ Os.default_options with Os.disable_sched_yield = true }
         ())
  in
  let ops = List.init 100 (fun _ -> Workload.Yield) in
  check_bool "hijacked yields much cheaper" true
    (Node.run_ops hijacked ~rank:0 ops * 3 < Node.run_ops plain ~rank:0 ops)

let test_offload_accounting () =
  let node = boot_node (Mckernel.create ()) in
  ignore (Node.run_ops node ~rank:0 [ Workload.Syscall Mk_syscall.Sysno.Open ]);
  let st = Node.rank_state node 0 in
  check_int "offload counted" 1 st.Node.task.Mk_proc.Task.acct.Mk_proc.Task.syscalls_offloaded;
  match st.Node.process.Mk_proc.Process.proxy with
  | Some proxy -> check_int "proxy served it" 1 proxy.Mk_proc.Process.offloads_served
  | None -> Alcotest.fail "proxy missing"

let test_shm_window_premap () =
  let premapped =
    Node.boot
      ~os:
        (Mckernel.create
           ~options:{ Os.default_options with Os.mpol_shm_premap = true }
           ())
      ~ranks:8 ~threads_per_rank:1 ~seed:3
  in
  let lazy_node = Node.boot ~os:(Mckernel.create ()) ~ranks:8 ~threads_per_rank:1 ~seed:3 in
  let pre = Node.shm_window premapped ~bytes_per_rank:(8 * mib) in
  let laz = Node.shm_window lazy_node ~bytes_per_rank:(8 * mib) in
  check_bool "premap pays at creation" true (pre.(0) > laz.(0));
  (* ...but the lazy node pays with contention at first touch. *)
  let asp = Node.address_space lazy_node ~rank:0 in
  let fault = Mk_mem.Address_space.touch_all asp ~concurrency:8 in
  check_bool "lazy faults later" true (fault > 0);
  let asp_pre = Node.address_space premapped ~rank:0 in
  check_int "premapped faults nothing" 0
    (Mk_mem.Address_space.touch_all asp_pre ~concurrency:8)

let test_shared_core_lwk_vs_cfs () =
  (* Oversubscription: the cooperative LWK queue finishes the batch
     with less scheduling overhead than preemptive CFS. *)
  let run os =
    let node = Node.boot ~os ~ranks:1 ~threads_per_rank:1 ~seed:5 in
    Node.run_shared_core node ~tasks:4
      ~ops_per_task:[ Workload.Compute (50 * Mk_engine.Units.ms) ]
  in
  let lwk = run (Mckernel.create ()) in
  let cfs = run (Linux_os.create ()) in
  check_bool "both at least the work" true
    (lwk >= 200 * Mk_engine.Units.ms && cfs >= 200 * Mk_engine.Units.ms);
  check_bool "lwk cheaper" true (lwk < cfs)

let test_mos_heap_toggle () =
  let on = Mos.create () in
  let off =
    Mos.create ~options:{ Os.default_options with Os.heap_management = false } ()
  in
  let strategy_on = on.Os.strategy ~ranks:1 in
  let strategy_off = off.Os.strategy ~ranks:1 in
  check_bool "2M increments when on" true
    (strategy_on.Mk_mem.Address_space.heap_increment = 2 * mib);
  check_bool "4K increments when off" true
    (strategy_off.Mk_mem.Address_space.heap_increment = 4096);
  check_bool "shrink honoured when off" true
    (not strategy_off.Mk_mem.Address_space.heap_ignore_shrink)


(* ------------------------------------------------------------------ *)
(* Procfs and tools support (Section II-D4) *)

let test_procfs_linux_all_native () =
  List.iter
    (fun e ->
      check_bool (Procfs.entry_path e) true
        (Procfs.serve Procfs.Linux e = Procfs.Native))
    Procfs.entries

let test_procfs_mos_mostly_reuses () =
  (* "mOS mostly reuses the Linux implementation". *)
  let reused =
    List.length
      (List.filter (fun e -> Procfs.serve Procfs.Mos e = Procfs.Reused) Procfs.entries)
  in
  check_bool "majority reused" true (2 * reused > List.length Procfs.entries)

let test_procfs_mckernel_reimplements () =
  (* "McKernel needs to implement various /sys and /proc files to
     reflect the resource partition". *)
  let reimpl =
    List.length
      (List.filter
         (fun e -> Procfs.serve Procfs.Mckernel e = Procfs.Reimplemented)
         Procfs.entries)
  in
  check_bool "several reimplemented" true (reimpl >= 6);
  check_bool "nothing reused in the proxy model" true
    (List.for_all (fun e -> Procfs.serve Procfs.Mckernel e <> Procfs.Reused)
       Procfs.entries)

let test_procfs_partition_visibility () =
  check_bool "forwarded files are stale" false
    (Procfs.reflects_partition Procfs.Forwarded);
  check_bool "missing files are stale" false (Procfs.reflects_partition Procfs.Missing);
  check_bool "reused files are fresh" true (Procfs.reflects_partition Procfs.Reused)

let test_tools_support_ordering () =
  (* Linux full > mOS > McKernel, per Section II-D4. *)
  let linux = Procfs.support_score Procfs.Linux in
  let mos = Procfs.support_score Procfs.Mos in
  let mck = Procfs.support_score Procfs.Mckernel in
  check_int "linux supports everything" (List.length Procfs.tools) linux;
  check_bool "mos above mckernel" true (mos > mck)

let test_tools_run_location () =
  (* "in McKernel most tools must run on an LWK core, while mOS can
     leave them on the Linux side". *)
  List.iter
    (fun t ->
      check_bool "mos tools linux-side" true
        (Procfs.tool_runs_on Procfs.Mos t = `Linux_core))
    Procfs.tools;
  let lwk_bound =
    List.length
      (List.filter
         (fun t -> Procfs.tool_runs_on Procfs.Mckernel t = `Lwk_core)
         Procfs.tools)
  in
  check_bool "most mckernel tools lwk-bound" true (2 * lwk_bound > List.length Procfs.tools)

let test_tools_debuggers_degraded_on_lwks () =
  List.iter
    (fun k ->
      match Procfs.tool_support k Procfs.Gdb with
      | Procfs.Degraded _ -> ()
      | v -> Alcotest.failf "gdb should be degraded, got %s" (Procfs.verdict_to_string v))
    [ Procfs.Mckernel; Procfs.Mos ]


let test_file_ops_via_proxy () =
  (* open/read/write/close: on McKernel the descriptor state lives in
     the Linux-side proxy's table. *)
  let node = boot_node (Mckernel.create ()) in
  let cost =
    Node.run_ops node ~rank:0
      [
        Workload.Open_file "/data/input";
        Workload.Read_bytes (1024 * 1024);
        Workload.Write_bytes 4096;
        Workload.Close_file;
      ]
  in
  check_bool "time charged" true (cost > 0);
  let st = Node.rank_state node 0 in
  let proc = st.Node.process in
  check_bool "proxy holds the descriptor table" true (Mk_proc.Process.has_proxy proc);
  let fds = Mk_proc.Process.fds proc in
  (* The file was closed again; only std streams remain. *)
  check_int "back to std streams" 3 (Mk_proc.Fd_table.open_count fds);
  check_int "four offloaded calls" 4
    st.Node.task.Mk_proc.Task.acct.Mk_proc.Task.syscalls_offloaded

let test_file_ops_local_on_linux () =
  let node = boot_node (Linux_os.create ()) in
  ignore
    (Node.run_ops node ~rank:0 [ Workload.Open_file "/x"; Workload.Read_bytes 4096 ]);
  let st = Node.rank_state node 0 in
  check_bool "no proxy" false (Mk_proc.Process.has_proxy st.Node.process);
  let fds = Mk_proc.Process.fds st.Node.process in
  check_int "descriptor open in own table" 4 (Mk_proc.Fd_table.open_count fds);
  (* The read advanced the file position. *)
  match st.Node.last_fd with
  | Some fd -> (
      match Mk_proc.Fd_table.lookup fds fd with
      | Some d -> check_int "position advanced" 4096 d.Mk_proc.Fd_table.position
      | None -> Alcotest.fail "descriptor missing")
  | None -> Alcotest.fail "no last fd"

let test_file_read_dearer_on_mckernel () =
  (* A large offloaded read ships its buffer through the IKC channel. *)
  let run os =
    let node = boot_node os in
    Node.run_ops node ~rank:0
      [ Workload.Open_file "/x"; Workload.Read_bytes (4 * mib) ]
  in
  check_bool "mckernel read dearer" true
    (run (Mckernel.create ()) > run (Linux_os.create ()))

let test_file_op_without_open_fails () =
  let node = boot_node (Linux_os.create ()) in
  ignore (Node.run_ops node ~rank:0 [ Workload.Read_bytes 4096 ]);
  check_int "failure recorded" 1 (Node.failures node)


let workload_fuzz =
  (* The interpreter must absorb any op sequence: no exceptions,
     non-negative time, bounded failure count. *)
  let gen_op =
    QCheck.Gen.(
      frequency
        [
          (3, map (fun ms -> Workload.Compute (ms * Mk_engine.Units.us)) (int_range 1 500));
          (2, map (fun kb -> Workload.Stream (kb * 1024)) (int_range 1 4096));
          (1, return (Workload.Syscall Mk_syscall.Sysno.Getpid));
          (1, return (Workload.Syscall Mk_syscall.Sysno.Open));
          (2, map (fun mb -> Workload.Brk (mb * mib)) (int_range (-8) 8));
          (1, return Workload.Touch_heap);
          (1, return Workload.Yield);
          (1, map (fun i -> Workload.Open_file (Printf.sprintf "/f%d" i)) (int_range 0 9));
          (1, map (fun kb -> Workload.Read_bytes (kb * 1024)) (int_range 1 128));
          (1, map (fun kb -> Workload.Write_bytes (kb * 1024)) (int_range 1 128));
          (1, return Workload.Close_file);
          (1, map (fun mb -> Workload.Mmap { bytes = mb * mib; touch = true }) (int_range 1 32));
        ])
  in
  QCheck.Test.make ~name:"node interpreter absorbs arbitrary programs" ~count:60
    QCheck.(make Gen.(pair (int_range 0 2) (list_size (int_range 0 40) gen_op)))
    (fun (os_i, ops) ->
      let os =
        match os_i with
        | 0 -> Linux_os.create ()
        | 1 -> Mckernel.create ()
        | _ -> Mos.create ()
      in
      let node = Node.boot ~os ~ranks:2 ~threads_per_rank:1 ~seed:17 in
      let t = Node.run_ops node ~rank:0 ops in
      t >= 0 && Node.failures node <= List.length ops)

let node_deterministic =
  QCheck.Test.make ~name:"node runs are deterministic per seed" ~count:20
    QCheck.(int_range 1 1000)
    (fun seed ->
      let run () =
        let node = Node.boot ~os:(Linux_os.create ()) ~ranks:4 ~threads_per_rank:1 ~seed in
        Node.run_ops node ~rank:0
          [ Workload.Compute (5 * Mk_engine.Units.ms); Workload.Brk 4096 ]
      in
      run () = run ())

let qsuite tests = List.map QCheck_alcotest.to_alcotest tests

let () =
  Alcotest.run "mk_kernel"
    [
      ( "ihk",
        [
          Alcotest.test_case "linux reservation" `Quick test_ihk_reserves_linux_memory;
          Alcotest.test_case "late grab fragments" `Quick test_ihk_late_fragments;
        ] );
      ( "os",
        [
          Alcotest.test_case "core partition" `Quick test_kernels_partition_cores;
          Alcotest.test_case "noise ordering" `Quick test_noise_isolation_ordering;
          Alcotest.test_case "contiguity" `Quick test_mos_better_contiguity_than_mckernel;
          Alcotest.test_case "linux local dispatch" `Quick
            test_syscall_dispatch_linux_local;
          Alcotest.test_case "offload dearer" `Quick test_syscall_dispatch_offload_dearer;
          Alcotest.test_case "lwk local leaner" `Quick test_syscall_local_lwk_leaner;
          Alcotest.test_case "disable_sched_yield" `Quick test_disable_sched_yield;
          Alcotest.test_case "mos heap toggle" `Quick test_mos_heap_toggle;
        ] );
      ( "procfs",
        [
          Alcotest.test_case "linux native" `Quick test_procfs_linux_all_native;
          Alcotest.test_case "mos reuses" `Quick test_procfs_mos_mostly_reuses;
          Alcotest.test_case "mckernel reimplements" `Quick
            test_procfs_mckernel_reimplements;
          Alcotest.test_case "partition visibility" `Quick
            test_procfs_partition_visibility;
          Alcotest.test_case "support ordering" `Quick test_tools_support_ordering;
          Alcotest.test_case "run location" `Quick test_tools_run_location;
          Alcotest.test_case "debuggers degraded" `Quick
            test_tools_debuggers_degraded_on_lwks;
        ] );
      ( "node",
        Alcotest.test_case "boot processes" `Quick test_node_boot_processes
        :: Alcotest.test_case "proxy only on mckernel" `Quick
             test_node_boot_no_proxy_elsewhere
        :: Alcotest.test_case "run compute" `Quick test_run_compute
        :: Alcotest.test_case "linux compute inflated" `Quick
             test_run_compute_linux_inflated
        :: Alcotest.test_case "brk and touch" `Quick test_run_brk_and_touch
        :: Alcotest.test_case "yield hijack" `Quick test_run_yield_hijack
        :: Alcotest.test_case "offload accounting" `Quick test_offload_accounting
        :: Alcotest.test_case "shm premap" `Quick test_shm_window_premap
        :: Alcotest.test_case "file ops via proxy" `Quick test_file_ops_via_proxy
        :: Alcotest.test_case "file ops local on linux" `Quick
             test_file_ops_local_on_linux
        :: Alcotest.test_case "offloaded read dearer" `Quick
             test_file_read_dearer_on_mckernel
        :: Alcotest.test_case "read without open fails" `Quick
             test_file_op_without_open_fails
        :: Alcotest.test_case "shared core" `Quick test_shared_core_lwk_vs_cfs
        :: qsuite [ node_deterministic; workload_fuzz ] );
    ]
