(* Tests for the application models: registry, specifications and the
   Lulesh allocation trace. *)

open Mk_apps

let check_int = Alcotest.(check int)
let check_bool = Alcotest.(check bool)

let gib = 1024 * 1024 * 1024

let test_registry_complete () =
  check_int "eight applications" 8 (List.length Registry.all);
  check_int "seven in figure 4" 7 (List.length Registry.fig4)

let test_registry_aliases () =
  List.iter
    (fun name -> check_bool name true (Registry.find name <> None))
    [ "amg"; "AMG2013"; "ccs-qcd"; "qcd"; "geofem"; "hpcg"; "LAMMPS"; "milc";
      "MiniFE"; "lulesh" ];
  check_bool "unknown rejected" true (Registry.find "nonsense" = None)

let test_ranks_fit_node () =
  (* 64 application cores, 4 hardware threads each. *)
  List.iter
    (fun (a : App.t) ->
      check_bool a.App.name true
        (a.App.ranks_per_node * a.App.threads_per_rank <= 64 * 4))
    Registry.all

let test_only_minife_strong () =
  List.iter
    (fun (a : App.t) ->
      let expected = if a.App.name = "MiniFE" then App.Strong else App.Weak in
      check_bool a.App.name true (a.App.scaling = expected))
    Registry.all

let test_ccs_qcd_exceeds_mcdram () =
  (* The paper's configuration: per-node footprint above 16 GB. *)
  let a = Option.get (Registry.find "ccs-qcd") in
  let total =
    List.fold_left
      (fun acc r -> acc + a.App.footprint_per_rank ~nodes:16 ~local_rank:r)
      0
      (List.init a.App.ranks_per_node (fun r -> r))
  in
  check_bool "above 16 GiB" true (total > 16 * gib);
  check_bool "below DDR capacity" true (total < 92 * gib);
  check_bool "linux runs in ddr" true a.App.linux_ddr_only

let test_others_fit_mcdram () =
  (* "All but CCS-QCD were sized to fit entirely into MCDRAM" — at
     scale (Lulesh's heap grows beyond at -s 50, as Section IV
     notes). *)
  List.iter
    (fun name ->
      let a = Option.get (Registry.find name) in
      let total =
        List.fold_left
          (fun acc r -> acc + a.App.footprint_per_rank ~nodes:64 ~local_rank:r)
          0
          (List.init a.App.ranks_per_node (fun r -> r))
      in
      check_bool name true (total <= 16 * gib))
    [ "amg"; "geofem"; "hpcg"; "lammps"; "milc" ]

let test_minife_strong_shrinks () =
  let a = Option.get (Registry.find "minife") in
  let f nodes = a.App.footprint_per_rank ~nodes ~local_rank:0 in
  check_bool "halves with nodes" true (f 2 < f 1);
  check_bool "keeps shrinking" true (f 1024 < f 64)

let test_lammps_has_no_global_sync () =
  let a = Option.get (Registry.find "lammps") in
  check_int "no allreduce per step" 0 (App.allreduce_count (a.App.iteration ~nodes:64))

let test_milc_reduction_heavy () =
  let milc = Option.get (Registry.find "milc") in
  let amg = Option.get (Registry.find "amg") in
  check_bool "milc outsyncs amg" true
    (App.allreduce_count (milc.App.iteration ~nodes:64)
    > App.allreduce_count (amg.App.iteration ~nodes:64))

let test_fom_scaling () =
  let a = Option.get (Registry.find "amg") in
  let fom = App.fom a ~nodes:4 ~total_time:Mk_engine.Units.sec in
  check_bool "positive" true (fom > 0.0);
  (* Double the time, half the figure of merit. *)
  let half = App.fom a ~nodes:4 ~total_time:(2 * Mk_engine.Units.sec) in
  Alcotest.(check (float 1e-6)) "inverse in time" (fom /. 2.0) half

(* ------------------------------------------------------------------ *)
(* The Lulesh trace *)

let test_trace_counts_match_paper () =
  let q, g, s = Lulesh_trace.count_stats (Lulesh_trace.full_trace ~scale:1.0) in
  check_int "queries" Lulesh_trace.expected_queries q;
  check_int "grows" Lulesh_trace.expected_grows g;
  check_int "shrinks" Lulesh_trace.expected_shrinks s

let test_trace_total_calls () =
  let q, g, s = Lulesh_trace.count_stats (Lulesh_trace.full_trace ~scale:1.0) in
  (* "a total of about 12,000 calls to brk()" *)
  check_int "about 12k calls" 12_053 (q + g + s)

let test_trace_heap_statistics () =
  (* Replay through an address space and compare against Section IV:
     87 MB peak, 22 GB cumulative. *)
  let phys =
    Mk_mem.Phys.create (Mk_hw.Topology.numa (Mk_hw.Knl.topology Mk_hw.Knl.Snc4_flat))
  in
  let asp =
    Mk_mem.Address_space.create ~phys ~strategy:Mk_mem.Address_space.linux_strategy
      ~default_policy:(Mk_mem.Policy.Default { home = 0 })
      ()
  in
  List.iter
    (fun op ->
      match op with
      | Mk_kernel.Workload.Brk delta -> (
          match Mk_mem.Address_space.brk asp ~delta with
          | Ok _ -> ()
          | Error `Enomem -> Alcotest.fail "brk enomem")
      | Mk_kernel.Workload.Touch_heap ->
          ignore (Mk_mem.Address_space.touch_heap asp ~concurrency:1)
      | _ -> ())
    (Lulesh_trace.full_trace ~scale:1.0);
  let st = Mk_mem.Address_space.stats asp in
  let mib = 1024 * 1024 in
  check_bool "peak near 85 MiB" true
    (st.Mk_mem.Address_space.heap_peak > 80 * mib
    && st.Mk_mem.Address_space.heap_peak < 90 * mib);
  let gib_f = float_of_int st.Mk_mem.Address_space.cumulative_heap_growth /. (1024.0 ** 3.0) in
  check_bool "cumulative near 22 GB" true (gib_f > 20.0 && gib_f < 24.0)

let test_trace_scale () =
  (* The -s 50 scale grows sizes by (50/30)^3 without changing call
     counts. *)
  let scale = (50.0 /. 30.0) ** 3.0 in
  let q, g, s = Lulesh_trace.count_stats (Lulesh_trace.full_trace ~scale) in
  check_int "queries unchanged" Lulesh_trace.expected_queries q;
  check_int "grows unchanged" Lulesh_trace.expected_grows g;
  check_int "shrinks unchanged" Lulesh_trace.expected_shrinks s

let test_trace_iteration_bounds () =
  check_bool "negative iteration rejected" true
    (try
       ignore (Lulesh_trace.iteration ~scale:1.0 ~iteration:(-1));
       false
     with Invalid_argument _ -> true);
  check_bool "beyond last rejected" true
    (try
       ignore (Lulesh_trace.iteration ~scale:1.0 ~iteration:Lulesh_trace.iterations);
       false
     with Invalid_argument _ -> true)

let footprints_positive =
  QCheck.Test.make ~name:"footprints are positive at any scale" ~count:100
    QCheck.(pair (oneofl Registry.all) (int_range 1 2048))
    (fun (app, nodes) ->
      List.for_all
        (fun r -> app.App.footprint_per_rank ~nodes ~local_rank:r > 0)
        (List.init app.App.ranks_per_node (fun r -> r)))

let qsuite tests = List.map QCheck_alcotest.to_alcotest tests

let () =
  Alcotest.run "mk_apps"
    [
      ( "registry",
        [
          Alcotest.test_case "complete" `Quick test_registry_complete;
          Alcotest.test_case "aliases" `Quick test_registry_aliases;
        ] );
      ( "specs",
        Alcotest.test_case "ranks fit node" `Quick test_ranks_fit_node
        :: Alcotest.test_case "only minife strong" `Quick test_only_minife_strong
        :: Alcotest.test_case "ccs-qcd exceeds mcdram" `Quick
             test_ccs_qcd_exceeds_mcdram
        :: Alcotest.test_case "others fit mcdram" `Quick test_others_fit_mcdram
        :: Alcotest.test_case "minife shrinks" `Quick test_minife_strong_shrinks
        :: Alcotest.test_case "lammps no global sync" `Quick
             test_lammps_has_no_global_sync
        :: Alcotest.test_case "milc reduction heavy" `Quick test_milc_reduction_heavy
        :: Alcotest.test_case "fom scaling" `Quick test_fom_scaling
        :: qsuite [ footprints_positive ] );
      ( "lulesh_trace",
        [
          Alcotest.test_case "counts match paper" `Quick test_trace_counts_match_paper;
          Alcotest.test_case "total calls" `Quick test_trace_total_calls;
          Alcotest.test_case "heap statistics" `Quick test_trace_heap_statistics;
          Alcotest.test_case "scale invariant counts" `Quick test_trace_scale;
          Alcotest.test_case "iteration bounds" `Quick test_trace_iteration_bounds;
        ] );
    ]
