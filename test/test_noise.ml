(* Tests for the OS-noise model: sources, profiles and the
   interval-delay / max-order-statistic samplers. *)

open Mk_engine
open Mk_noise

let check_int = Alcotest.(check int)
let check_bool = Alcotest.(check bool)

let test_source_overhead () =
  let s = Source.make ~name:"x" ~period:(10 * Units.ms) ~duration:(10 * Units.us) () in
  Alcotest.(check (float 1e-9)) "overhead" 0.001 (Source.overhead s)

let test_source_validation () =
  check_bool "bad period rejected" true
    (try
       ignore (Source.make ~name:"x" ~period:0 ~duration:1 ());
       false
     with Invalid_argument _ -> true)

let test_profile_ordering () =
  (* Noise strictly increases from LWK to Linux to service cores. *)
  let o p = Profile.total_overhead p in
  check_bool "silent is zero" true (o Profile.silent = 0.0);
  check_bool "mos above silent" true (o Profile.mos_lwk > 0.0);
  check_bool "nohz above mos" true (o Profile.linux_nohz_full > o Profile.mos_lwk);
  check_bool "default above nohz" true
    (o Profile.linux_default > o Profile.linux_nohz_full);
  check_bool "service core worst" true
    (o Profile.linux_service_core > o Profile.linux_default)

let test_silent_delay_zero () =
  let rng = Rng.create 1 in
  for _ = 1 to 100 do
    check_int "no delay" 0 (Injector.delay Profile.silent rng ~dur:Units.sec)
  done

let test_delay_mean_tracks_overhead () =
  let rng = Rng.create 2 in
  let n = 3_000 in
  let dur = 50 * Units.ms in
  let total = ref 0 in
  for _ = 1 to n do
    total := !total + Injector.delay Profile.linux_default rng ~dur
  done;
  let mean = float_of_int !total /. float_of_int n in
  let expected = float_of_int (Injector.mean_delay Profile.linux_default ~dur) in
  check_bool "mean within 25% of expectation" true
    (abs_float (mean -. expected) < 0.25 *. expected)

let test_inflate_at_least_dur () =
  let rng = Rng.create 3 in
  for _ = 1 to 200 do
    let dur = 1 * Units.ms in
    check_bool "inflate >= dur" true
      (Injector.inflate Profile.linux_default rng ~dur >= dur)
  done

let test_max_delay_monotone_in_ranks () =
  (* The slowest of many threads suffers at least as much as one
     thread, on average. *)
  let mean ranks =
    let rng = Rng.create 4 in
    let total = ref 0 in
    for _ = 1 to 1_000 do
      total :=
        !total
        + Injector.max_delay Profile.linux_nohz_full rng ~dur:(10 * Units.ms) ~ranks
    done;
    float_of_int !total /. 1_000.0
  in
  let m1 = mean 1 and m64 = mean 64 and m256 = mean 256 in
  check_bool "64 > 1" true (m64 > m1);
  check_bool "256 >= 64" true (m256 >= m64 *. 0.9)

let test_max_delay_ranks_one_matches_delay () =
  (* ranks = 1 uses the plain sampler. *)
  let a = Rng.create 5 and b = Rng.create 5 in
  for _ = 1 to 50 do
    check_int "identical"
      (Injector.delay Profile.linux_default a ~dur:Units.ms)
      (Injector.max_delay Profile.linux_default b ~dur:Units.ms ~ranks:1)
  done

let test_max_delay_rejects_bad_ranks () =
  let rng = Rng.create 6 in
  check_bool "zero ranks rejected" true
    (try
       ignore (Injector.max_delay Profile.silent rng ~dur:1 ~ranks:0);
       false
     with Invalid_argument _ -> true)

let test_determinism () =
  let run () =
    let rng = Rng.create 7 in
    List.init 100 (fun _ ->
        Injector.max_delay Profile.linux_default rng ~dur:Units.ms ~ranks:16)
  in
  Alcotest.(check (list int)) "same seed same stream" (run ()) (run ())


(* ------------------------------------------------------------------ *)
(* FTQ *)

let test_ftq_silent_perfect () =
  let s = Ftq.run ~profile:Profile.silent ~quantum:Units.ms ~quanta:100 ~seed:1 in
  Alcotest.(check (float 1e-12)) "all work done" 1.0 s.Ftq.mean_work;
  check_int "nothing perturbed" 0 s.Ftq.perturbed_quanta;
  Alcotest.(check (float 1e-12)) "no noise" 0.0 s.Ftq.noise_fraction

let test_ftq_ordering () =
  (* FTQ reproduces the isolation ordering of Section II-D2. *)
  let noise p =
    (Ftq.run ~profile:p ~quantum:Units.ms ~quanta:3000 ~seed:2).Ftq.noise_fraction
  in
  let mos = noise Profile.mos_lwk in
  let nohz = noise Profile.linux_nohz_full in
  let default = noise Profile.linux_default in
  check_bool "mos below nohz" true (mos < nohz);
  check_bool "nohz below default" true (nohz < default)

let test_ftq_bounds () =
  let s =
    Ftq.run ~profile:Profile.linux_default ~quantum:Units.ms ~quanta:500 ~seed:3
  in
  check_int "sample count" 500 (List.length s.Ftq.samples);
  check_bool "work in [0,1]" true
    (List.for_all (fun x -> x.Ftq.work_done >= 0.0 && x.Ftq.work_done <= 1.0)
       s.Ftq.samples);
  check_bool "worst detour bounded by quantum" true (s.Ftq.worst_detour <= Units.ms)

let delay_nonnegative =
  QCheck.Test.make ~name:"delay is non-negative" ~count:300
    QCheck.(int_range 1 100_000_000)
    (fun dur ->
      let rng = Rng.create dur in
      Injector.delay Profile.linux_default rng ~dur >= 0)

let qsuite tests = List.map QCheck_alcotest.to_alcotest tests

let () =
  Alcotest.run "mk_noise"
    [
      ( "ftq",
        [
          Alcotest.test_case "silent perfect" `Quick test_ftq_silent_perfect;
          Alcotest.test_case "isolation ordering" `Quick test_ftq_ordering;
          Alcotest.test_case "bounds" `Quick test_ftq_bounds;
        ] );
      ( "source",
        [
          Alcotest.test_case "overhead" `Quick test_source_overhead;
          Alcotest.test_case "validation" `Quick test_source_validation;
        ] );
      ("profile", [ Alcotest.test_case "ordering" `Quick test_profile_ordering ]);
      ( "injector",
        Alcotest.test_case "silent zero" `Quick test_silent_delay_zero
        :: Alcotest.test_case "mean tracks overhead" `Slow
             test_delay_mean_tracks_overhead
        :: Alcotest.test_case "inflate lower bound" `Quick test_inflate_at_least_dur
        :: Alcotest.test_case "max monotone in ranks" `Slow
             test_max_delay_monotone_in_ranks
        :: Alcotest.test_case "ranks=1 equals delay" `Quick
             test_max_delay_ranks_one_matches_delay
        :: Alcotest.test_case "bad ranks" `Quick test_max_delay_rejects_bad_ranks
        :: Alcotest.test_case "determinism" `Quick test_determinism
        :: qsuite [ delay_nonnegative ] );
    ]
